type violation = { condition : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "(%s) %s" v.condition v.detail

let violation condition fmt = Format.kasprintf (fun detail -> { condition; detail }) fmt

let ( let* ) = Result.bind

let with_bases ~n history k =
  match Base.context ~n history with
  | Error e -> Error { condition = "base"; detail = e }
  | Ok ctx -> (
      let scans = Base.completed_scans ctx in
      let rec bases acc = function
        | [] -> Ok (List.rev acc)
        | sc :: rest -> (
            match Base.of_scan ctx sc with
            | Error e -> Error { condition = "base"; detail = e }
            | Ok b -> bases ((sc, b) :: acc) rest)
      in
      match bases [] scans with
      | Error e -> Error e
      | Ok scan_bases -> k ctx scan_bases)

(* (A1)/(S1): pairwise comparability. Sorting by cardinality, it
   suffices that each consecutive pair is ordered by inclusion. *)
let check_comparable scan_bases =
  let sorted =
    List.sort
      (fun (_, b1) (_, b2) ->
        Int.compare (Base.Int_set.cardinal b1) (Base.Int_set.cardinal b2))
      scan_bases
  in
  let rec walk = function
    | (sc1, b1) :: ((sc2, b2) :: _ as rest) ->
        if not (Base.subset b1 b2) then
          Error
            (violation "A1" "bases of scans #%d and #%d are incomparable"
               sc1.History.id sc2.History.id)
        else walk rest
    | [ _ ] | [] -> Ok ()
  in
  walk sorted

let check_atomic ~n history =
  with_bases ~n history @@ fun ctx scan_bases ->
  let* () = check_comparable scan_bases in
  let updates = Base.updates ctx in
  (* (A0): a base never contains an update the scan precedes. Implicit
     in the paper (no execution can return a value before it is
     written); explicit here because the checker accepts arbitrary
     histories, and the exhaustive-search cross-validation showed the
     printed (A1)-(A4) alone admit such future-reading histories. *)
  let* () =
    List.fold_left
      (fun acc (sc, b) ->
        let* () = acc in
        List.fold_left
          (fun acc (u : History.op) ->
            let* () = acc in
            if Base.Int_set.mem u.id b && History.precedes sc u then
              Error
                (violation "A0"
                   "scan #%d returned update #%d which was invoked only \
                    after the scan responded"
                   sc.History.id u.id)
            else Ok ())
          (Ok ()) updates)
      (Ok ()) scan_bases
  in
  (* (A2): every update that precedes a scan is in its base. *)
  let* () =
    List.fold_left
      (fun acc (sc, b) ->
        let* () = acc in
        List.fold_left
          (fun acc (u : History.op) ->
            let* () = acc in
            if History.precedes u sc && not (Base.Int_set.mem u.id b) then
              Error
                (violation "A2"
                   "update #%d (value %d) precedes scan #%d but is missing \
                    from its base"
                   u.id (History.update_value u) sc.History.id)
            else Ok ())
          (Ok ()) updates)
      (Ok ()) scan_bases
  in
  (* (A3): real-time order of scans respects base inclusion. *)
  let* () =
    List.fold_left
      (fun acc (sc1, b1) ->
        let* () = acc in
        List.fold_left
          (fun acc (sc2, b2) ->
            let* () = acc in
            if History.precedes sc1 sc2 && not (Base.subset b1 b2) then
              Error
                (violation "A3"
                   "scan #%d precedes scan #%d but its base is not contained"
                   sc1.History.id sc2.History.id)
            else Ok ())
          (Ok ()) scan_bases)
      (Ok ()) scan_bases
  in
  (* (A4): bases are closed under real-time predecessors of their
     members. *)
  List.fold_left
    (fun acc (sc, b) ->
      let* () = acc in
      List.fold_left
        (fun acc (u2 : History.op) ->
          let* () = acc in
          if not (Base.Int_set.mem u2.id b) then Ok ()
          else
            List.fold_left
              (fun acc (u1 : History.op) ->
                let* () = acc in
                if History.precedes u1 u2 && not (Base.Int_set.mem u1.id b)
                then
                  Error
                    (violation "A4"
                       "update #%d precedes update #%d ∈ base of scan #%d \
                        but is missing from that base"
                       u1.id u2.id sc.History.id)
                else Ok ())
              (Ok ()) updates)
        (Ok ()) updates)
    (Ok ()) scan_bases

let check_sequential ~n history =
  with_bases ~n history @@ fun ctx scan_bases ->
  let* () =
    match check_comparable scan_bases with
    | Error v -> Error { v with condition = "S1" }
    | Ok () -> Ok ()
  in
  let updates = Base.updates ctx in
  (* (S2): program-order same-node updates before a scan are in its
     base; ones after it are not. Program order = id order. The "must be
     in the base" half applies only to {e acknowledged} updates: an
     unacked update (crashed mid-op, possibly aborted by a restart) is
     effect-optional, and a post-restart scan by the same node id may
     legitimately miss it — read-your-writes covers writes that were
     acknowledged to the caller. *)
  let* () =
    List.fold_left
      (fun acc (sc, b) ->
        let* () = acc in
        List.fold_left
          (fun acc (u : History.op) ->
            let* () = acc in
            if u.node <> sc.History.node then Ok ()
            else if
              u.id < sc.History.id && u.resp <> None
              && not (Base.Int_set.mem u.id b)
            then
              Error
                (violation "S2"
                   "node %d's update #%d precedes its scan #%d in program \
                    order but is missing from the base"
                   u.node u.id sc.History.id)
            else if u.id > sc.History.id && Base.Int_set.mem u.id b then
              Error
                (violation "S2"
                   "node %d's scan #%d returned its own later update #%d"
                   u.node sc.History.id u.id)
            else Ok ())
          (Ok ()) updates)
      (Ok ()) scan_bases
  in
  (* (S3): same-node scans have monotone bases in program order. *)
  List.fold_left
    (fun acc (sc1, b1) ->
      let* () = acc in
      List.fold_left
        (fun acc (sc2, b2) ->
          let* () = acc in
          if
            sc1.History.node = sc2.History.node
            && sc1.History.id < sc2.History.id
            && not (Base.subset b1 b2)
          then
            Error
              (violation "S3"
                 "node %d's scans #%d and #%d have non-monotone bases"
                 sc1.History.node sc1.History.id sc2.History.id)
          else Ok ())
        (Ok ()) scan_bases)
    (Ok ()) scan_bases
