(** ABD register emulation (Attiya, Bar-Noy, Dolev 1995): [n] SWMR
    atomic registers — one per writer — over majority quorums.

    This is the substrate of the {e stacking} approach the paper's
    introduction discusses (build registers, then run a shared-memory
    snapshot algorithm on top): each node replicates all [n] registers;
    a WRITE to one's own register is one round trip (SWMR writers own
    their timestamps); a READ is a query round plus a {e write-back}
    round — the write-back is what upgrades regular to atomic (no
    new-old inversion between successive readers).

    Besides single-register [read], the interface exposes the batched
    [read_all] (query all registers from a quorum, merge pointwise,
    write the merged vector back): what a shared-memory snapshot
    algorithm's "collect" compiles to, at registers' 2-round-trip
    price. {!Stacked_aso} builds on it. *)

module Msg : sig
  type 'v t =
    | Write of { req : int; entry : 'v Reg_store.entry }
    | Write_ack of { req : int }
    | Read_q of { req : int }
    | Read_r of { req : int; vector : 'v Reg_store.vector }
    | Write_back of { req : int; vector : 'v Reg_store.vector }
    | Write_back_ack of { req : int }

  val kind : 'v t -> string
  (** Wire-protocol message name, for tracing. *)
end

type 'v t

val create : Sim.Engine.t -> n:int -> f:int -> delay:Sim.Delay.t -> 'v t
(** Requires [n > 2f]. *)

val write : 'v t -> node:int -> 'v -> unit
(** Write the caller's own register (single-writer). Blocking; fiber. *)

val read : 'v t -> node:int -> reg:int -> 'v option
(** Atomic read of register [reg] ([None] if never written): query
    quorum, pick highest timestamp, write back, return. Blocking. *)

val read_all : 'v t -> node:int -> 'v Reg_store.vector
(** Batched atomic read of all [n] registers (one query round, one
    write-back round — 4 message delays). Blocking. *)

val net : 'v t -> 'v Msg.t Sim.Network.t
val instanceless_messages : 'v t -> int
(** Messages sent so far (for the stacking-cost comparison). *)
