module Msg = struct
  type 'v t =
    | Write of { req : int; entry : 'v Reg_store.entry }
    | Write_ack of { req : int }
    | Read_q of { req : int }
    | Read_r of { req : int; vector : 'v Reg_store.vector }
    | Write_back of { req : int; vector : 'v Reg_store.vector }
    | Write_back_ack of { req : int }

  let kind = function
    | Write _ -> "write"
    | Write_ack _ -> "writeAck"
    | Read_q _ -> "readQ"
    | Read_r _ -> "readR"
    | Write_back _ -> "writeBack"
    | Write_back_ack _ -> "writeBackAck"
end

type 'v node = {
  id : int;
  replicas : 'v Reg_store.vector;
  acks : Collector.t;
  reads : (int, 'v Reg_store.vector) Hashtbl.t;
  changed : Sim.Condition.t;
  mutable seq : int;
}

type 'v t = {
  net : 'v Msg.t Sim.Network.t;
  n : int;
  f : int;
  nodes : 'v node array;
}

let handle t nd ~src msg =
  (match msg with
  | Msg.Write { req; entry } ->
      ignore
        (Reg_store.merge_entry nd.replicas
           ~writer:(Timestamp.writer entry.Reg_store.ts)
           entry);
      Sim.Network.send t.net ~src:nd.id ~dst:src (Msg.Write_ack { req })
  | Msg.Write_ack { req } | Msg.Write_back_ack { req } ->
      Collector.record nd.acks ~req ~sender:src ~payload:0
  | Msg.Read_q { req } ->
      Sim.Network.send t.net ~src:nd.id ~dst:src
        (Msg.Read_r { req; vector = Reg_store.copy nd.replicas })
  | Msg.Read_r { req; vector } -> (
      match Hashtbl.find_opt nd.reads req with
      | None -> ()
      | Some acc ->
          Reg_store.merge ~into:acc vector;
          Collector.record nd.acks ~req ~sender:src ~payload:0)
  | Msg.Write_back { req; vector } ->
      Reg_store.merge ~into:nd.replicas vector;
      Sim.Network.send t.net ~src:nd.id ~dst:src (Msg.Write_back_ack { req }));
  Sim.Condition.signal nd.changed

let create engine ~n ~f ~delay =
  Quorum.check_crash ~n ~f;
  let net = Sim.Network.create engine ~n ~delay in
  Sim.Network.set_msg_label net Msg.kind;
  let make_node id =
    {
      id;
      replicas = Reg_store.create ~n;
      acks = Collector.create ();
      reads = Hashtbl.create 8;
      changed = Sim.Condition.create ();
      seq = 0;
    }
  in
  let t = { net; n; f; nodes = Array.init n make_node } in
  Array.iter (fun nd -> Sim.Network.set_handler net nd.id (handle t nd)) t.nodes;
  t

let await_quorum t nd req =
  Sim.Condition.await nd.changed (fun () ->
      Collector.count nd.acks ~req >= t.n - t.f);
  Collector.forget nd.acks ~req

let write t ~node v =
  let nd = t.nodes.(node) in
  nd.seq <- nd.seq + 1;
  let entry =
    { Reg_store.ts = Timestamp.make ~tag:nd.seq ~writer:node; value = v }
  in
  let req = Collector.fresh nd.acks in
  Sim.Network.broadcast t.net ~src:node (Msg.Write { req; entry });
  await_quorum t nd req

let write_back t nd vector =
  let req = Collector.fresh nd.acks in
  Sim.Network.broadcast t.net ~src:nd.id (Msg.Write_back { req; vector });
  await_quorum t nd req

let read_all t ~node =
  let nd = t.nodes.(node) in
  let req = Collector.fresh nd.acks in
  Hashtbl.replace nd.reads req (Reg_store.copy nd.replicas);
  Sim.Network.broadcast t.net ~src:node (Msg.Read_q { req });
  Sim.Condition.await nd.changed (fun () ->
      Collector.count nd.acks ~req >= t.n - t.f);
  Collector.forget nd.acks ~req;
  let merged = Hashtbl.find nd.reads req in
  Hashtbl.remove nd.reads req;
  (* Atomicity: expose the merged vector to a quorum before returning. *)
  write_back t nd merged;
  merged

let read t ~node ~reg =
  let vector = read_all t ~node in
  Option.map (fun e -> e.Reg_store.value) vector.(reg)

let net t = t.net
let instanceless_messages t = Sim.Network.messages_sent t.net
