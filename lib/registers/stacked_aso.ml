type 'v payload = { value : 'v; embedded : 'v payload Reg_store.vector }

type 'v t = { abd : 'v payload Abd.t; n : int; f : int; obs : Obs.Trace.t }

let create engine ~n ~f ~delay =
  { abd = Abd.create engine ~n ~f ~delay; n; f;
    obs = Sim.Engine.trace engine }

let span t ~pid name f =
  if not (Obs.Trace.enabled t.obs) then f ()
  else begin
    let now () = Sim.Engine.now (Sim.Network.engine (Abd.net t.abd)) in
    Obs.Trace.span_begin t.obs ~ts:(now ()) ~pid ~cat:"op" name;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.span_end t.obs ~ts:(now ()) ~pid ~cat:"op" name)
      f
  end

(* Afek et al.'s scan: repeated collects; a clean double collect returns
   directly, a writer seen moving twice is borrowed from. Identical
   helping logic to Sc_aso — the difference under measurement is purely
   the cost of a collect (ABD read-all: 4 delays). *)
let scan_vector t node =
  let moved = Array.make t.n 0 in
  let last = Array.make t.n None in
  let note vector =
    let borrow = ref None in
    for writer = 0 to t.n - 1 do
      let ts = Reg_store.ts_of vector ~writer in
      (match (last.(writer), ts) with
      | Some prev, Some now when not (Timestamp.equal prev now) ->
          moved.(writer) <- moved.(writer) + 1;
          if moved.(writer) >= 2 then
            Option.iter (fun e -> borrow := Some e) vector.(writer)
      | _ -> ());
      if ts <> None then last.(writer) <- ts
    done;
    !borrow
  in
  let rec stabilise previous =
    let current = Abd.read_all t.abd ~node in
    match note current with
    | Some (entry : 'v payload Reg_store.entry) -> entry.value.embedded
    | None ->
        if Reg_store.equal_ts previous current then current
        else stabilise current
  in
  let first = Abd.read_all t.abd ~node in
  let _ = note first in
  stabilise first

let scan t ~node =
  span t ~pid:node "SCAN" @@ fun () ->
  Array.map
    (Option.map (fun (p : 'v payload) -> p.value))
    (Reg_store.extract (scan_vector t node))

let update t ~node v =
  span t ~pid:node "UPDATE" @@ fun () ->
  let embedded = scan_vector t node in
  Abd.write t.abd ~node { value = v; embedded }

let instance t =
  Aso_core.Wiring.instance ~name:"stacked-aso" ~f:t.f
    ~update:(fun node v -> update t ~node v)
    ~scan:(fun node -> scan t ~node)
    ~net:(Abd.net t.abd)
    ~value_match:(fun ~writer -> function
      | Abd.Msg.Write { entry; _ } ->
          Option.fold ~none:true
            ~some:(Int.equal (Timestamp.writer entry.Reg_store.ts))
            writer
      | _ -> false)
    ()
