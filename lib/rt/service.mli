(** Front-end that owns an rt deployment and drives it under load.

    Clients (systhreads) submit UPDATE/SCAN requests; each request runs
    as a work thunk on the target node's own domain, so per-node
    execution is serialized — the model's sequential-node assumption —
    while different nodes run genuinely in parallel. The service stamps
    a real-time {!History.t} at protocol execution boundaries (under one
    service lock, with the monotonic clock), which every completed run
    feeds through the batch A0–A4 checker. Client-perceived latency
    (including mailbox queueing) is measured separately by the clients
    and reported as p50/p99 material; it is {e not} what the history
    records, because overlapping same-node client intervals would
    violate history well-formedness.

    {b Batching} ([~batch:true]): per-node group commit. Queued updates
    are coalesced into a single protocol write of the last queued value;
    only that fused write enters the checked history, and the coalesced
    requests are acknowledged when it completes (linearize them
    immediately before the fused write — sound because checker bases
    are prefix-closed in per-node program order).

    {b Crashes}: {!run}'s [~crash] list poisons those nodes mid-run
    (k ≤ f enforced); their in-flight requests resolve as [`Crashed] and
    clients fail over to other nodes. A crashed node contributes at most
    one pending operation to the history, as the model prescribes. *)

type algo = Eq_aso | Sso_fast_scan

val algo_name : algo -> string
val algo_of_name : string -> algo option
(** Accepts dashes or underscores, case-insensitive. *)

type t

val create : ?batch:bool -> algo:algo -> n:int -> f:int -> unit -> t
(** Build the deployment (network, protocol wiring, history); domains
    are not running until {!start}. Requires [n > 2f]. *)

val start : t -> unit
val stop : t -> unit
(** Stop all node domains and join them. Call only when no requests are
    outstanding. *)

val fresh_value : t -> int
(** Globally unique update values (the checker identifies an UPDATE by
    its value — the paper's footnote-2 assumption). *)

val update : t -> node:int -> int -> [ `Done | `Crashed ]
(** Blocking (closed-loop) UPDATE from any client thread. [`Crashed] if
    the node failed before or during the request. *)

val scan : t -> node:int -> [ `Snap of int option array | `Crashed ]

val crash_node : t -> int -> unit
(** Poison the node and fail its in-flight requests. *)

val history : t -> History.t
val net : t -> int Aso_core.Lattice_core.Msg.t Net.t

(** {2 Closed-loop load runs} *)

type report = {
  algorithm : string;
  backend : string;
  rep_n : int;
  rep_f : int;
  clients : int;
  batched : bool;
  duration : float;  (** measured wall seconds *)
  completed_updates : int;
  completed_scans : int;
  rejected : int;  (** requests refused or aborted by crashes *)
  fused_updates : int;  (** protocol writes saved by batching *)
  ops_per_sec : float;
  update_latencies : float list;  (** client-observed, seconds *)
  scan_latencies : float list;
  crashed_nodes : int list;
  messages_sent : int;
  history : History.t;
}

val run :
  ?batch:bool ->
  ?scan_fraction:float ->
  ?seed:int ->
  ?crash:int list ->
  ?crash_after:float ->
  algo:algo ->
  n:int ->
  f:int ->
  clients:int ->
  secs:float ->
  unit ->
  report
(** Deploy, run [clients] closed-loop client threads for [secs] wall
    seconds (default [scan_fraction] 0.2, [seed] 42), optionally crash
    the [~crash] nodes at [~crash_after] (default halfway), stop the
    deployment, and report. The returned history is finished and ready
    for the batch checker. *)

val volatile_metrics : report -> (string * float) list
(** The report's timing-dependent numbers, for the bench JSON's volatile
    section ({e never} the drift-gated one). *)
