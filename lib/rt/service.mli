(** Front-end that owns an rt deployment and drives it under load.

    Clients (systhreads) submit UPDATE/SCAN requests; each request runs
    as a work thunk on the target node's own domain, so per-node
    execution is serialized — the model's sequential-node assumption —
    while different nodes run genuinely in parallel. The service stamps
    a real-time {!History.t} at protocol execution boundaries (under one
    service lock, with the monotonic clock), which every completed run
    feeds through the batch A0–A4 checker. Client-perceived latency
    (including mailbox queueing) is measured separately by the clients
    and reported as p50/p99 material; it is {e not} what the history
    records, because overlapping same-node client intervals would
    violate history well-formedness.

    {b Batching} ([~batch:true]): per-node group commit. Queued updates
    are coalesced into a single protocol write of the last queued value;
    only that fused write enters the checked history, and the coalesced
    requests are acknowledged when it completes (linearize them
    immediately before the fused write — sound because checker bases
    are prefix-closed in per-node program order). Submission is
    lock-free: each node has an {!Mpmc} sub-queue fed by every client
    domain, and a CAS-claimed drain flag decides which submitter posts
    the drain work item — the service lock is not taken on this path.

    {b Crashes}: {!run}'s [~crash] list poisons those nodes mid-run
    (k ≤ f enforced); their in-flight requests resolve as [`Aborted] and
    clients fail over to other nodes. A crashed node contributes at most
    one pending operation to the history, as the model prescribes.

    {b Crash-restart}: every node owns a durable store (a file-backed
    write-ahead log under [~wal_dir], or durable memory without it) that
    survives {!crash_node} — the crash tears down the domain, not the
    disk. {!restart_node} aborts the dead incarnation's pending history
    operation, resets the protocol's volatile state, replays the log,
    rejoins via a quorum state pull on a fresh domain, and serves again;
    the first served operation is a probe SCAN the service stamps into
    the checked history, so the A0–A4 battery exercises the recovered
    node. {!run}'s [~restart_after] drives the whole cycle under live
    client traffic. *)

type algo = Eq_aso | Sso_fast_scan

val algo_name : algo -> string
val algo_of_name : string -> algo option
(** Accepts dashes or underscores, case-insensitive. *)

type t

type recovery = {
  rec_node : int;
  rec_replayed : int;
      (** log records replayed (the store's size at restart) *)
  rec_ready_after : float;
      (** seconds from the restart call to recovery completion *)
  rec_first_op : float;
      (** seconds from the restart call to the first served operation
          (the probe SCAN the service runs as soon as rejoin ends) *)
}

val create :
  ?batch:bool ->
  ?recorder:bool ->
  ?online:bool ->
  ?monitor_throttle:(unit -> unit) ->
  ?parking:Node.parking ->
  ?mutation:Aso_core.Lattice_core.mutation ->
  ?wal_dir:string ->
  algo:algo ->
  n:int ->
  f:int ->
  unit ->
  t
(** Build the deployment (network, protocol wiring, history); domains
    are not running until {!start}. Requires [n > 2f]. With [~wal_dir],
    node [i] writes its mints to [wal_dir/node-i.wal] (created or
    appended); without it, each node gets an in-memory durable store, so
    {!restart_node} works either way. [recorder] (default [true])
    attaches the per-node flight-recorder rings; [online] (default
    [false]) attaches a {!Live_monitor} (fed at every history stamp,
    started/joined by {!start}/{!stop}) {e and} enables the network's
    causal stamping, so a live violation carries a causal-cone slice;
    [monitor_throttle] is the monitor-slowing test hook forwarded to
    {!Live_monitor.create}; [mutation] arms a seeded protocol bug
    ({!Aso_core.Lattice_core.mutation}) so the checker/forensics
    pipeline can be demonstrated on a run that is {e guaranteed} to
    violate. *)

val start : t -> unit
val stop : t -> unit
(** Stop all node domains and join them. Call only when no requests are
    outstanding. *)

val fresh_value : t -> int
(** Globally unique update values (the checker identifies an UPDATE by
    its value — the paper's footnote-2 assumption). *)

val update : t -> node:int -> int -> [ `Done | `Rejected | `Aborted ]
(** Blocking (closed-loop) UPDATE from any client thread. [`Rejected] if
    the node was already down when the request arrived (nothing ran);
    [`Aborted] if it crashed while the request was in flight. *)

val scan : t -> node:int -> [ `Snap of int option array | `Rejected | `Aborted ]

val crash_node : t -> int -> unit
(** Poison the node, fail its in-flight requests as [`Aborted], and
    reset its group-commit drain flag (the drain work died with the
    domain; a stale flag would park post-restart batched clients
    forever). *)

val restart_node : t -> int -> unit
(** Revive a crashed node: abort its pending history operation (restart
    is not resurrection), reset protocol volatile state, respawn the
    domain ({!Net.restart}), and run the blocking rejoin — log replay,
    quorum state pull, mint fence, one renewal — as the fresh domain's
    first work item, followed by a probe SCAN stamped into the history.
    Returns as soon as the rejoin is {e posted}; the node serves again
    once it completes (requests meanwhile queue behind it).
    @raise Invalid_argument if the node is not crashed. *)

val history : t -> History.t
val net : t -> int Aso_core.Lattice_core.Msg.t Net.t

val live_monitor : t -> Live_monitor.t option
(** The live online monitor, when created with [~online:true] — the
    sampler line reads its lag and last-checked age from here. *)

val metrics : t -> Obs.Metrics.t
(** The deployment's registry: [net.*] counters plus the service-level
    [svc.updates_ok], [svc.scans_ok], [svc.rejected], [svc.aborted]
    counters and [svc.update_latency_s] / [svc.scan_latency_s]
    log-histograms. Safe to snapshot from any thread while the
    deployment runs — this is what the live telemetry endpoint serves. *)

val recorder : t -> Obs.Recorder.t option
(** The flight recorder (when enabled): drain/merge any time, including
    after {!stop}, for the forensics dump. *)

val stats_snapshot : t -> Obs.Metrics.snapshot
(** [Obs.Metrics.snapshot (metrics t)]. *)

(** {2 Closed-loop load runs} *)

type report = {
  algorithm : string;
  backend : string;
  rep_n : int;
  rep_f : int;
  clients : int;
  batched : bool;
  duration : float;  (** measured wall seconds *)
  completed_updates : int;
  completed_scans : int;
  rejected : int;  (** requests refused up front — target already down *)
  aborted : int;  (** requests in flight when their node crashed *)
  fused_updates : int;  (** protocol writes saved by batching *)
  ops_per_sec : float;
  update_lat : Obs.Hdr.dist;
      (** client-observed seconds, log-bucketed (~3.1% relative error) —
          query with [Obs.Hdr.dist_quantile] *)
  scan_lat : Obs.Hdr.dist;
  crashed_nodes : int list;
  recoveries : recovery list;  (** one entry per completed rejoin *)
  messages_sent : int;
  final_metrics : Obs.Metrics.snapshot;  (** registry at shutdown *)
  history : History.t;
  live_verdict : Live_monitor.verdict option;
      (** [Some _] iff the live monitor tripped — the run was halted
          mid-flight (client intake stops at the next poll) *)
  monitor_events_checked : int;  (** 0 when the monitor is off *)
  monitor_scans_verified : int;
}

val run :
  ?batch:bool ->
  ?recorder:bool ->
  ?online:bool ->
  ?monitor_throttle:(unit -> unit) ->
  ?parking:Node.parking ->
  ?mutation:Aso_core.Lattice_core.mutation ->
  ?on_start:(t -> unit) ->
  ?scan_fraction:float ->
  ?seed:int ->
  ?crash:int list ->
  ?crash_after:float ->
  ?restart_after:float ->
  ?wal_dir:string ->
  algo:algo ->
  n:int ->
  f:int ->
  clients:int ->
  secs:float ->
  unit ->
  report
(** Deploy, run [clients] closed-loop client threads for [secs] wall
    seconds (default [scan_fraction] 0.2, [seed] 42), optionally crash
    the [~crash] nodes at [~crash_after] (default halfway), stop the
    deployment, and report. With [~restart_after] (must exceed the crash
    time; raises [Invalid_argument] otherwise), the crashed nodes are
    revived at that offset — log replay, rejoin, probe SCAN — while
    client traffic continues, and the report's [recoveries] list carries
    the measured recovery times. The returned history is finished and
    ready for the batch checker.

    With [~online:true] a {!Live_monitor} checks the history as it is
    produced: a violation halts client intake mid-run (the run returns
    early) and lands in the report's [live_verdict], complete with a
    causal-cone slice from the network's vector-clock log.

    [on_start] is called with the live deployment right after the node
    domains start and before clients are spawned — the hook the serve
    command uses to wire its sampler thread and telemetry endpoint to
    {!metrics}/{!recorder} while the run is in flight. The handle stays
    valid (for post-mortem drains) after [run] returns. *)

val volatile_metrics : report -> (string * float) list
(** The report's timing-dependent numbers, for the bench JSON's volatile
    section ({e never} the drift-gated one). *)
