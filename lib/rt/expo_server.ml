(* Minimal exposition endpoint: one listener thread, one short-lived
   HTTP/1.0 exchange per connection (read and discard the request, write
   the rendered body, close). Prometheus scrapes are exactly this shape,
   and one render per scrape means the server never holds locks or
   references into the live deployment — the render callback snapshots
   whatever it needs. *)

type t = {
  sock : Unix.file_descr;
  addr : string;
  thread : Thread.t;
  stopping : bool Atomic.t;
}

let parse_addr addr =
  match String.rindex_opt addr ':' with
  | None -> invalid_arg "Rt.Expo_server: ADDR must be HOST:PORT"
  | Some i -> (
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port with
      | None -> invalid_arg "Rt.Expo_server: bad port"
      | Some port ->
          let host = if host = "" then "127.0.0.1" else host in
          (Unix.inet_addr_of_string host, port))

let handle render client =
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      (* Read (and ignore) whatever request arrived; a zero-length read
         means the peer closed first. *)
      let buf = Bytes.create 4096 in
      (try ignore (Unix.read client buf 0 (Bytes.length buf) : int)
       with Unix.Unix_error _ -> ());
      let body = render () in
      let resp =
        Printf.sprintf
          "HTTP/1.0 200 OK\r\n\
           Content-Type: text/plain; version=0.0.4\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          (String.length body) body
      in
      let rec write_all off =
        if off < String.length resp then
          match
            Unix.write_substring client resp off (String.length resp - off)
          with
          | 0 -> ()
          | n -> write_all (off + n)
          | exception Unix.Unix_error _ -> ()
      in
      write_all 0)

let start ~addr render =
  let inet, port = parse_addr addr in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (inet, port))
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 16;
  let stopping = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept sock with
          | client, _ ->
              handle render client;
              loop ()
          | exception Unix.Unix_error _ ->
              (* [stop] closed the listener (or accept failed hard):
                 either way the endpoint is done. *)
              if not (Atomic.get stopping) then () else ()
        in
        loop ())
      ()
  in
  { sock; addr; thread; stopping }

let addr t = t.addr

let stop t =
  if not (Atomic.exchange t.stopping true) then (
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Thread.join t.thread)
