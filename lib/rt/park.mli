(** Eventcount parking for lock-free consumers.

    A consumer that finds its queue empty registers ({!prepare}:
    waiter count up, sequence ticket out), re-checks the queue, and
    only then blocks ({!wait}) until the sequence moves past its
    ticket; producers {!signal} after publishing work, paying one
    atomic read when nobody is parked. See [park.ml] for the
    no-lost-wakeup argument; [test_verif] machine-checks it by
    exhaustive interleaving, including detecting the {!Lost_signal}
    seeded mutant. *)

type mutation = Lost_signal  (** [signal] forgets the sequence bump. *)

module type S = sig
  type t

  val create : ?mutation:mutation -> unit -> t

  val prepare : t -> int
  (** Register as a waiter and take a ticket. Must be followed by a
      queue re-check, then either {!cancel} (work appeared) or
      {!wait}+{!finish}. *)

  val cancel : t -> unit
  (** Deregister without sleeping. *)

  val poll : t -> int -> bool
  (** [poll t ticket] — has the sequence moved past [ticket]? *)

  val poll_spy : t -> int -> bool
  (** Untraced {!poll}, for explorer [until] predicates only. *)

  val wait : t -> int -> unit
  (** Block until [poll t ticket]; caller then calls {!finish}. *)

  val finish : t -> unit
  (** Deregister after a {!wait}. *)

  val signal : t -> unit
  (** Post-publication wake: if any consumer is registered, bump the
      sequence and broadcast. One atomic read when none is. *)

  val wake_all : t -> unit
  (** Unconditional bump+broadcast (crash/stop paths). *)
end

module Make (A : Verif.Atomic_intf.S) : S

include S
