(* Live online monitoring for the rt backend: a dedicated monitor domain
   consumes completed operations from a lock-free feed populated by
   [Service] at invoke/respond/abort time and drives the streaming
   [Obs.Monitor] (A0-A4 for eq-aso, the S-pass for sso) against the live
   history, with bounded lag.

   Feed memory model (see DESIGN.md section 6d). [Service] stamps every
   history event under its single service lock, reading the monotonic
   clock INSIDE the critical section, and pushes the matching monitor
   event into the feed before releasing the lock. Pushes are therefore
   totally ordered and their order agrees with the timestamp order, so
   the monitor — the queue's single consumer — replays exactly the
   time-ordered event stream the streaming checker's well-formedness
   pass requires. No reorder buffer, no false positives from
   cross-domain scheduling: the monitor lags the service by however many
   events sit in the queue ([lag]), but it never sees them out of order.

   On violation the monitor trips: it captures the verdict (the
   violation plus a causal-cone slice at the violating node's current
   vector clock, when causal stamping is on), stops consuming, and
   [Service.client_loop] — which polls [tripped] — halts intake so the
   serve run fails mid-flight rather than at the final batch check. *)

type verdict = {
  violation : Obs.Monitor.violation;
  slice : Obs.Vclock.event list;
      (* happened-before message cone into the violating op; [] when
         causal stamping is off *)
  lag_events : int; (* feed depth when the monitor tripped *)
  at : float; (* service clock when the monitor tripped *)
}

(* The feed itself: an unbounded single-producer/single-consumer linked
   queue (producers are already serialised by the service lock, the
   monitor domain is the only consumer — stdlib [Queue] is not safe
   across domains). A sentinel-headed list whose [next] pointers are
   atomic: the producer publishes by storing into the tail's [next],
   the consumer advances [head]; each end is owned by exactly one
   domain, so the only synchronisation is that one atomic store/load
   pair per event. *)
module Feed : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop_opt : 'a t -> 'a option
end = struct
  type 'a cell = { value : 'a option; next : 'a cell option Atomic.t }

  type 'a t = {
    mutable head : 'a cell; (* consumer-owned: the sentinel *)
    mutable tail : 'a cell; (* producer-owned: last appended cell *)
  }

  let cell value = { value; next = Atomic.make None }

  let create () =
    let s = cell None in
    { head = s; tail = s }

  let push t v =
    let c = cell (Some v) in
    Atomic.set t.tail.next (Some c);
    t.tail <- c

  let pop_opt t =
    match Atomic.get t.head.next with
    | None -> None
    | Some c ->
        t.head <- c;
        c.value
end

type t = {
  feed : Obs.Monitor.event Feed.t;
  mon : Obs.Monitor.t;
  n : int;
  causal : Obs.Vclock.recorder option;
  now : unit -> float;
  throttle : (unit -> unit) option;
  tripped : verdict option Atomic.t;
  stopping : bool Atomic.t;
  pushed : int Atomic.t;
  checked : int Atomic.t;
  last_checked_at : float Atomic.t;
  g_lag : Obs.Metrics.gauge;
  c_events : Obs.Metrics.counter;
  c_scans : Obs.Metrics.counter;
  h_check : Obs.Metrics.log_histogram;
  h_lag : Obs.Metrics.log_histogram;
  mutable domain : unit Domain.t option;
}

let create ?(mode = Obs.Monitor.Atomic) ?causal ?throttle ~metrics ~now ~n ()
    =
  {
    feed = Feed.create ();
    mon = Obs.Monitor.create ~mode ~n ();
    n;
    causal;
    now;
    throttle;
    tripped = Atomic.make None;
    stopping = Atomic.make false;
    pushed = Atomic.make 0;
    checked = Atomic.make 0;
    last_checked_at = Atomic.make (now ());
    g_lag = Obs.Metrics.gauge metrics "aso.monitor.lag_events";
    c_events = Obs.Metrics.counter metrics "aso.monitor.events_checked";
    c_scans = Obs.Metrics.counter metrics "aso.monitor.scans_verified";
    h_check = Obs.Metrics.log_histogram metrics "aso.monitor.check_latency_s";
    (* Lag sampled at every consumed event, so the bench can report a
       lag p99 instead of only the instantaneous gauge. *)
    h_lag = Obs.Metrics.log_histogram metrics "aso.monitor.lag_dist";
    domain = None;
  }

let tripped t = Atomic.get t.tripped
let lag t = max 0 (Atomic.get t.pushed - Atomic.get t.checked)
let events_checked t = Atomic.get t.checked
let scans_verified t = Obs.Metrics.count t.c_scans

(* Seconds since the monitor last consumed an event — the "is the
   monitor domain stalled" indicator on the console sampler line. *)
let last_checked_age t = t.now () -. Atomic.get t.last_checked_at

(* Producer side: called by [Service] under its service lock (which is
   what makes the feed time-ordered, and what makes the SPSC queue's
   single-producer contract hold — see the header comment). Cheap: one
   cell append and one atomic increment. *)
let push t ev =
  if Atomic.get t.tripped = None then begin
    Feed.push t.feed ev;
    Atomic.incr t.pushed
  end

let trip t (v : Obs.Monitor.violation) =
  let slice =
    match t.causal with
    | None -> []
    | Some vr ->
        (* The cone at the violating node's clock is the happened-before
           message chain into the violating op. A wf violation can carry
           node = -1; fall back to the join of all clocks (the full
           causal past of the system at trip time). *)
        let vc =
          if v.node >= 0 && v.node < t.n then Obs.Vclock.clock vr v.node
          else begin
            let acc = Obs.Vclock.make t.n in
            for i = 0 to t.n - 1 do
              Obs.Vclock.merge_into ~src:(Obs.Vclock.clock vr i) ~dst:acc
            done;
            acc
          end
        in
        Obs.Vclock.slice vr ~vc
  in
  Atomic.set t.tripped
    (Some { violation = v; slice; lag_events = lag t; at = t.now () })

(* The monitor domain: pop, feed, account. Spins briefly on an empty
   feed before sleeping a fraction of a millisecond — the monitor must
   not steal a core from the node domains while idle, but should keep
   lag near zero under load. *)
let spin_budget = 256

let rec loop t spins =
  if Atomic.get t.tripped <> None then ()
  else
    match Feed.pop_opt t.feed with
    | Some ev ->
        (match t.throttle with Some f -> f () | None -> ());
        let t0 = t.now () in
        (match Obs.Monitor.feed t.mon ev with
        | Ok () -> ()
        | Error v -> trip t v);
        let t1 = t.now () in
        Obs.Metrics.record t.h_check (t1 -. t0);
        Obs.Metrics.incr t.c_events;
        (match ev with
        | Obs.Monitor.Respond_scan _ when Atomic.get t.tripped = None ->
            Obs.Metrics.incr t.c_scans
        | _ -> ());
        Atomic.incr t.checked;
        Atomic.set t.last_checked_at t1;
        let l = float_of_int (lag t) in
        Obs.Metrics.set t.g_lag l;
        Obs.Metrics.record t.h_lag l;
        loop t spin_budget
    | None ->
        if Atomic.get t.stopping then ()
        else if spins > 0 then begin
          Domain.cpu_relax ();
          loop t (spins - 1)
        end
        else begin
          Unix.sleepf 0.0002;
          loop t spin_budget
        end

let start t =
  if t.domain <> None then invalid_arg "Rt.Live_monitor.start: already running";
  t.domain <- Some (Domain.spawn (fun () -> loop t spin_budget))

(* Shutdown drains: [stopping] only takes effect on an empty feed, so
   every event pushed before [stop] is checked (unless the monitor
   tripped first) — the serve path needs the full history verified even
   when the run ends before the monitor caught up. *)
let stop t =
  Atomic.set t.stopping true;
  (match t.domain with
  | Some d ->
      t.domain <- None;
      Domain.join d
  | None -> ());
  Obs.Metrics.set t.g_lag (float_of_int (lag t));
  tripped t

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>LIVE MONITOR VIOLATION: %a@,lag at trip: %d events"
    Obs.Monitor.pp_violation v.violation v.lag_events;
  (match v.slice with
  | [] -> ()
  | evs ->
      Format.fprintf ppf "@,causal cone into op %d (%d events):"
        v.violation.op (List.length evs);
      List.iter (fun ev -> Format.fprintf ppf "@,  %a" Obs.Vclock.pp_event ev)
        evs);
  Format.fprintf ppf "@]"
