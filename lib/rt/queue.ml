(* Vyukov-style intrusive MPSC queue (cf. the Saturn library's
   single-consumer queues): producers contend on one atomic [tail]
   exchange; the consumer owns [head] outright and never synchronizes
   with other consumers, because there are none — each mailbox belongs
   to exactly one node domain.

   The implementation is a functor over {!Verif.Atomic_intf.S} so the
   same code runs on [Stdlib.Atomic] in production (the [include] at
   the bottom — zero cost, no indirection survives inlining) and on
   {!Verif.Tatomic} under the interleaving explorer, which preempts at
   every atomic step. [create]'s [mutation] knob plants the seeded bugs
   the explorer's self-test must catch (precedent:
   [Lattice_core.set_mutation]). *)

type mutation =
  | Skip_link  (** [push] omits the [prev.next] publication. *)
  | No_advance  (** [pop_opt] returns the element but keeps [head]. *)

module type S = sig
  type 'a t

  val create : ?mutation:mutation -> unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop_opt : 'a t -> 'a option
  val is_empty : 'a t -> bool
  val nonempty_spy : 'a t -> bool
  val length : 'a t -> int
end

module Make (A : Verif.Atomic_intf.S) = struct
  type 'a node = {
    (* [None] only on a consumed node (or the initial stub); cleared on
       pop so the queue does not pin popped payloads for the GC. *)
    mutable value : 'a option;
    next : 'a node option A.t;
  }

  type 'a t = {
    tail : 'a node A.t;  (* producers swap here, then link *)
    mutable head : 'a node;  (* consumer-only: current stub *)
    (* Approximate occupancy for telemetry: bumped after the push's
       exchange, dropped after a successful pop. Racy by design — a
       reader can observe the count before the element is linked or
       after it was popped, so at any instant it is off by at most the
       number of in-flight pushes plus in-flight pops — but never
       drifts (every push is matched by one pop), which is all a
       mailbox-depth gauge needs. *)
    depth : int A.t;
    mutation : mutation option;
  }

  let create ?mutation () =
    let stub = { value = None; next = A.make None } in
    {
      (* [tail] and [depth] are written from every producing domain;
         padding gives each its own cache lines so producer traffic on
         one does not invalidate the other (or the record block holding
         the consumer's [head]). *)
      tail = A.make_padded stub;
      head = stub;
      depth = A.make_padded 0;
      mutation;
    }

  let push t v =
    let n = { value = Some v; next = A.make None } in
    let prev = A.exchange t.tail n in
    (* Between the exchange above and the link below, [n] (and anything
       enqueued after it) is unreachable from [head]: a concurrent pop
       reads the queue as empty. That transient is why mailbox consumers
       must park under the eventcount and producers signal after [push]
       returns — the linking producer's signal is what makes the suffix
       visible. *)
    (match t.mutation with
    | Some Skip_link -> ()
    | _ -> A.set prev.next (Some n));
    A.incr t.depth

  let pop_opt t =
    match A.get t.head.next with
    | None -> None
    | Some n ->
        let v = n.value in
        (match t.mutation with
        | Some No_advance -> ()
        | _ ->
            n.value <- None;
            t.head <- n);
        A.decr t.depth;
        v

  let is_empty t = A.get t.head.next = None

  (* Untraced emptiness probe for park predicates under the explorer
     (a [Tatomic.until] predicate must not perform effects); in
     production [A.spy = A.get], so this is exactly [not is_empty]. *)
  let nonempty_spy t = A.spy t.head.next <> None

  let length t = max 0 (A.spy t.depth)
end

include Make (Verif.Atomic_intf.Plain)
