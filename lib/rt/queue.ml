(* Vyukov-style intrusive MPSC queue (cf. the Saturn library's
   single-consumer queues): producers contend on one atomic [tail]
   exchange; the consumer owns [head] outright and never synchronizes
   with other consumers, because there are none — each mailbox belongs
   to exactly one node domain. *)

type 'a node = {
  (* [None] only on a consumed node (or the initial stub); cleared on
     pop so the queue does not pin popped payloads for the GC. *)
  mutable value : 'a option;
  next : 'a node option Atomic.t;
}

type 'a t = {
  tail : 'a node Atomic.t;  (* producers swap here, then link *)
  mutable head : 'a node;  (* consumer-only: current stub *)
  (* Approximate occupancy for telemetry: bumped after the push's
     exchange, dropped after a successful pop. Racy by design — a reader
     can observe the count before the element is linked or after it was
     popped — but never drifts (every push is matched by one pop), which
     is all a mailbox-depth gauge needs. *)
  depth : int Atomic.t;
}

let create () =
  let stub = { value = None; next = Atomic.make None } in
  { tail = Atomic.make stub; head = stub; depth = Atomic.make 0 }

let push t v =
  let n = { value = Some v; next = Atomic.make None } in
  let prev = Atomic.exchange t.tail n in
  (* Between the exchange above and the link below, [n] (and anything
     enqueued after it) is unreachable from [head]: a concurrent pop
     reads the queue as empty. That transient is why mailbox consumers
     must park under a lock and producers signal after [push] returns —
     the linking producer's signal is what makes the suffix visible. *)
  Atomic.set prev.next (Some n);
  Atomic.incr t.depth

let pop_opt t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
      let v = n.value in
      n.value <- None;
      t.head <- n;
      Atomic.decr t.depth;
      v

let is_empty t = Atomic.get t.head.next = None

let length t = max 0 (Atomic.get t.depth)
