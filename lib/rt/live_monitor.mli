(** Live online monitoring for the rt backend.

    A dedicated monitor domain consumes completed operations from a
    lock-free MPSC feed ({!Queue}) populated by {!Service} at
    invoke/respond/abort time, and drives the streaming {!Obs.Monitor}
    — A0–A4 for eq-aso, the sequential S-pass for sso — against the
    live history with bounded lag. The feed is time-ordered by
    construction: every producer pushes while holding the service lock,
    with the event's timestamp read inside the same critical section,
    so the single consumer replays exactly the non-decreasing-timestamp
    stream the streaming checker requires — bounded lag costs detection
    latency, never soundness (DESIGN.md §6d).

    On violation the monitor {e trips}: it records a {!verdict} — the
    violation plus, when the network runs with causal stamping
    ({!Net.create}[ ~causal:true]), the happened-before causal-cone
    slice at the violating node's vector clock — and stops consuming.
    {!Service} polls {!tripped} from its client loops and halts intake,
    failing the serve run mid-flight instead of at the final batch
    check.

    Monitor health is first-class telemetry in the deployment registry:
    [aso.monitor.lag_events] (gauge), [aso.monitor.events_checked] and
    [aso.monitor.scans_verified] (counters), and
    [aso.monitor.check_latency_s] (HDR histogram of per-event check
    cost) — all visible through the Prometheus exposition and the
    [--stats-every] console sampler. *)

type verdict = {
  violation : Obs.Monitor.violation;
  slice : Obs.Vclock.event list;
      (** happened-before message cone into the violating op, oldest
          first; [[]] when causal stamping is off *)
  lag_events : int;  (** feed depth when the monitor tripped *)
  at : float;  (** service clock when the monitor tripped *)
}

type t

val create :
  ?mode:Obs.Monitor.mode ->
  ?causal:Obs.Vclock.recorder ->
  ?throttle:(unit -> unit) ->
  metrics:Obs.Metrics.t ->
  now:(unit -> float) ->
  n:int ->
  unit ->
  t
(** [mode] selects the checker pass (default [Atomic]); [causal] is the
    network's vector-clock recorder, enabling violation slices;
    [throttle] runs before every consumed event — a test hook to slow
    the monitor domain and exercise the lag bound. Registers the
    [aso.monitor.*] instruments in [metrics] (call before domains run,
    like all registration). *)

val start : t -> unit
(** Spawn the monitor domain. @raise Invalid_argument if running. *)

val push : t -> Obs.Monitor.event -> unit
(** Producer side. {b Ordering contract}: callers must serialize pushes
    and read each event's timestamp under the same lock (the service
    lock), so feed order agrees with timestamp order. Events pushed
    after the monitor tripped are discarded. *)

val stop : t -> verdict option
(** Drain the feed (every event already pushed is still checked, unless
    a violation trips the monitor first), join the domain, and return
    the final verdict. *)

val tripped : t -> verdict option
(** Non-blocking; safe from any domain. [Some _] once a violation
    fired — {!Service}'s client loops poll this to halt intake. *)

val lag : t -> int
(** Events pushed but not yet checked. *)

val events_checked : t -> int

val scans_verified : t -> int
(** Scan responses that passed the full per-scan pass so far. *)

val last_checked_age : t -> float
(** Seconds since the monitor last consumed an event — a stalled
    monitor domain shows as a growing age on the sampler line. *)

val pp_verdict : Format.formatter -> verdict -> unit
