(* Michael–Scott two-lock-free MPMC queue: the batched-submission path
   in {!Service} lets every client domain push and lets whichever domain
   wins the draining flag pop, so the mailbox MPSC is not enough there.

   Standard MS shape: a dummy node; [pop] CASes [head] forward; [push]
   CASes the last node's [next] then swings [tail] (and helps a stalled
   pusher swing it). OCaml's GC makes the classic ABA hazard moot — a
   node's address cannot be recycled while anyone still holds it — so no
   counted pointers are needed; popped values are cleared so the queue
   does not pin them.

   Functorized over {!Verif.Atomic_intf.S} like {!Queue}: [test_verif]
   runs this code under the traced atomics (exhaustive interleavings of
   the CAS helping dance) and under STM linearizability at 2–4 domains
   against a strict FIFO model — unlike the MPSC, this queue has no
   transient-empty window: [pop_opt = None] is linearizable exactly at
   the [head.next] read. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop_opt : 'a t -> 'a option
  val is_empty : 'a t -> bool
end

module Make (A : Verif.Atomic_intf.S) = struct
  type 'a node = { mutable value : 'a option; next : 'a node option A.t }

  type 'a t = { head : 'a node A.t; tail : 'a node A.t }

  let create () =
    let stub = { value = None; next = A.make None } in
    (* Poppers hammer [head], pushers hammer [tail]: separate lines. *)
    { head = A.make_padded stub; tail = A.make_padded stub }

  let rec push_node t n =
    let last = A.get t.tail in
    match A.get last.next with
    | None ->
        if A.compare_and_set last.next None (Some n) then
          (* Swing [tail]; losing means someone helped us — fine. *)
          ignore (A.compare_and_set t.tail last n)
        else push_node t n
    | Some nx ->
        (* Tail lagging: help the in-flight pusher before retrying. *)
        ignore (A.compare_and_set t.tail last nx);
        push_node t n

  let push t v = push_node t { value = Some v; next = A.make None }

  (* GC-simplified MS pop: [head] may only move past a node whose
     [next] is linked, so reading [first.next = None] proves [first]
     was still the dummy and the queue empty at that read — the
     linearization point for the empty answer. [tail] is left to the
     pushers' helping; it may lag behind [head], which is harmless
     because dequeued dummies keep their [next] chain intact. *)
  let rec pop_opt t =
    let first = A.get t.head in
    match A.get first.next with
    | None -> None
    | Some nx ->
        if A.compare_and_set t.head first nx then begin
          (* We own [nx] as the new dummy; only the winner touches its
             value. *)
          let v = nx.value in
          nx.value <- None;
          v
        end
        else pop_opt t

  let is_empty t = A.get (A.get t.head).next = None
end

include Make (Verif.Atomic_intf.Plain)
