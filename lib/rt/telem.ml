(* Telemetry vocabulary for the rt backend: one flight-recorder ring per
   node plus the interned event codes every instrumentation site uses.
   Codes are interned once at network creation (before any domain runs),
   so the hot paths carry only small ints into [Obs.Recorder] — four
   plain stores and two atomic stores per event, no allocation. *)

type t = {
  recorder : Obs.Recorder.t;
  now : unit -> float;  (* monotonic wall seconds, shared with Net *)
  op_update : int;
  op_scan : int;
  park_wait : int;
  mailbox_depth : int;
  batch_fuse : int;
  recover_replay : int;
  recover_rejoin : int;
  net_msg : int;
}

type node = { ring : Obs.Recorder.ring; sh : t }

let create ?capacity ~n ~now () =
  let recorder = Obs.Recorder.create ?capacity ~n () in
  let i = Obs.Recorder.intern recorder in
  {
    recorder;
    now;
    op_update = i ~cat:"op" "op.update";
    op_scan = i ~cat:"op" "op.scan";
    park_wait = i ~cat:"sched" "park.wait";
    mailbox_depth = i ~cat:"sched" "mailbox.depth";
    batch_fuse = i ~cat:"op" "batch.fuse";
    recover_replay = i ~cat:"recover" "recover.replay";
    recover_rejoin = i ~cat:"recover" "recover.rejoin";
    net_msg = i ~cat:"net" "net.msg";
  }

let recorder t = t.recorder
let node t i = { ring = Obs.Recorder.ring t.recorder i; sh = t }
let now nd = nd.sh.now ()

(* Writer-path helpers: each must be called only by the domain that owns
   the node (see the single-writer contract in [Obs.Recorder]). *)

let update_begin nd =
  Obs.Recorder.span_begin nd.ring ~code:nd.sh.op_update ~ts:(nd.sh.now ())

let update_end nd =
  Obs.Recorder.span_end nd.ring ~code:nd.sh.op_update ~ts:(nd.sh.now ())

let scan_begin nd =
  Obs.Recorder.span_begin nd.ring ~code:nd.sh.op_scan ~ts:(nd.sh.now ())

let scan_end nd =
  Obs.Recorder.span_end nd.ring ~code:nd.sh.op_scan ~ts:(nd.sh.now ())

let park nd ~secs =
  Obs.Recorder.instant nd.ring ~code:nd.sh.park_wait ~ts:(nd.sh.now ())
    ~value:secs

let depth nd ~n =
  Obs.Recorder.counter nd.ring ~code:nd.sh.mailbox_depth ~ts:(nd.sh.now ())
    ~value:(float_of_int n)

let fuse nd ~n =
  Obs.Recorder.counter nd.ring ~code:nd.sh.batch_fuse ~ts:(nd.sh.now ())
    ~value:(float_of_int n)

(* Flow events pair a [net.msg] departure on the sender's ring with the
   arrival on the receiver's — Perfetto draws the cross-track arrow from
   the shared flow id. Send-side events are emitted by the sending
   domain, receive-side by the receiving domain (the Node.on_deliver
   hook), both honouring the single-writer contract. *)
let flow_send nd ~flow =
  Obs.Recorder.flow_start nd.ring ~code:nd.sh.net_msg ~ts:(nd.sh.now ()) ~flow

let flow_recv nd ~flow =
  Obs.Recorder.flow_end nd.ring ~code:nd.sh.net_msg ~ts:(nd.sh.now ()) ~flow

(* The WAL replay runs on the restarter thread while the node's domain
   is dead; the fresh domain emits the span retroactively with the
   measured timestamps, preserving the single-writer contract. *)
let replay nd ~t0 ~t1 =
  Obs.Recorder.span_begin nd.ring ~code:nd.sh.recover_replay ~ts:t0;
  Obs.Recorder.span_end nd.ring ~code:nd.sh.recover_replay ~ts:t1

let rejoin_begin nd =
  Obs.Recorder.span_begin nd.ring ~code:nd.sh.recover_rejoin
    ~ts:(nd.sh.now ())

let rejoin_end nd =
  Obs.Recorder.span_end nd.ring ~code:nd.sh.recover_rejoin ~ts:(nd.sh.now ())
