module LC = Aso_core.Lattice_core

type algo = Eq_aso | Sso_fast_scan

let algo_name = function Eq_aso -> "eq-aso" | Sso_fast_scan -> "sso-fast-scan"

let algo_of_name s =
  match String.map (function '_' -> '-' | c -> c) (String.lowercase_ascii s) with
  | "eq-aso" -> Some Eq_aso
  | "sso-fast-scan" -> Some Sso_fast_scan
  | _ -> None

type ops = {
  op_update : node:int -> int -> unit;
  op_scan : node:int -> int option array;
  op_begin_recovery : node:int -> unit;
  op_recover : node:int -> unit;
}

(* A client's handle on one submitted request. [state] transitions
   Pending -> Done | Aborted exactly once ([resolve] is idempotent), so
   the operation's own completion path and the crash sweep can race
   harmlessly. *)
type reply = {
  rm : Mutex.t;
  rc : Condition.t;
  mutable state : [ `Pending | `Done | `Aborted ];
  mutable snap : int option array option;
}

type recovery = {
  rec_node : int;
  rec_replayed : int;
      (** log records replayed (the store's size at restart) *)
  rec_ready_after : float;
      (** seconds from the restart call to recovery completion *)
  rec_first_op : float;
      (** seconds from the restart call to the first served operation
          (the probe SCAN the service runs as soon as rejoin ends) *)
}

type t = {
  net : int LC.Msg.t Net.t;
  n : int;
  f : int;
  ops : ops;
  stores : int Persist.Store.t array;
  batch : bool;
  (* One service lock guards the history and the in-flight registries.
     Protocol execution never holds it across a blocking point — work
     bodies take it only to stamp history events at operation
     boundaries. The batched path below does NOT use it: submission
     rides a lock-free MPMC queue per node. *)
  lock : Mutex.t;
  history : History.t;
  in_flight : reply list array;
  (* Per-node group-commit sub-queue. Producers: every client domain.
     Consumers: the node's drain work item — and, concurrently, the
     crash sweep in [crash_node]/[restart_node], which is why this must
     be MPMC and not the mailbox MPSC. *)
  batch_q : (int * reply) Mpmc.t array;
  (* True while a drain work item is queued or running on the node.
     CAS-claimed by the first submitter after an empty drain; reset by
     the drainer (followed by a missed-wakeup re-check) and by the
     crash path. *)
  batch_draining : bool Atomic.t array;
  (* Service-level flag: true from [restart_node] until the node's
     rejoin completes. [pick_node] skips recovering nodes; a racy read
     only costs a request that waits behind the recovery work. *)
  recovering : bool array;
  mutable recoveries : recovery list;
  mutable fused_away : int;
  next_value : int Atomic.t;
  (* Per-node flight-recorder handles ([None] when the recorder is off);
     written only from the owning node's domain, except the retroactive
     replay span in [restart_node] (explicit-timestamp events emitted by
     the fresh incarnation). *)
  tnodes : Telem.node option array;
  (* Live online monitor ([None] unless created with [~online:true]).
     Producers push feed events under [s.lock], with the event timestamp
     read inside the same critical section — that is the total order
     that makes the monitor's time-ordered stream sound (DESIGN.md
     section 6d). *)
  live : Live_monitor.t option;
  (* Service-level instruments, live in the deployment's registry so the
     telemetry endpoint exposes them next to the [net.*] counters. *)
  c_updates_ok : Obs.Metrics.counter;
  c_scans_ok : Obs.Metrics.counter;
  c_rejected : Obs.Metrics.counter;
  c_aborted : Obs.Metrics.counter;
  h_update_lat : Obs.Metrics.log_histogram;
  h_scan_lat : Obs.Metrics.log_histogram;
}

let new_reply () =
  {
    rm = Mutex.create ();
    rc = Condition.create ();
    state = `Pending;
    snap = None;
  }

let resolve r st =
  Mutex.lock r.rm;
  (match r.state with
  | `Pending ->
      r.state <- st;
      Condition.broadcast r.rc
  | `Done | `Aborted -> ());
  Mutex.unlock r.rm

let await_reply r =
  Mutex.lock r.rm;
  while r.state = `Pending do
    Condition.wait r.rc r.rm
  done;
  let st = r.state in
  Mutex.unlock r.rm;
  match st with `Pending -> assert false | (`Done | `Aborted) as st -> st

(* Callers hold [s.lock]. *)
let unregister s node r =
  s.in_flight.(node) <- List.filter (fun r' -> r' != r) s.in_flight.(node)

(* Work bodies run on the node's own domain, so per-node execution is
   serialized and history invoke/respond events at a node never overlap
   — which is what the checker's well-formedness (sequential nodes,
   Section II-A) requires. Client-perceived latency, which does include
   mailbox queueing, is measured separately by the clients. *)

(* Flight-recorder emission points — all on the node's own domain (the
   work body), so the single-writer contract holds. Span ends fire on
   both the success and the crash-unwind path. *)
let tele s node f = match s.tnodes.(node) with Some nd -> f nd | None -> ()

(* Feed pushes for the live monitor. Callers hold [s.lock] and pass the
   same timestamp they stamped into the history, so feed order agrees
   with timestamp order (the push itself happens inside the critical
   section). *)
let feed s ev = match s.live with Some lm -> Live_monitor.push lm ev | None -> ()

let feed_invoke s ~at (op : History.op) =
  feed s
    (Obs.Monitor.Invoke
       {
         id = op.id;
         node = op.node;
         at;
         op =
           (match op.kind with
           | History.Update v -> Obs.Monitor.Update v
           | History.Scan _ -> Obs.Monitor.Scan);
       })

let run_update s ~node v r () =
  tele s node Telem.update_begin;
  Mutex.lock s.lock;
  let at = Net.now s.net in
  let op = History.begin_update s.history ~now:at ~node ~value:v in
  feed_invoke s ~at op;
  Mutex.unlock s.lock;
  match s.ops.op_update ~node v with
  | () ->
      Mutex.lock s.lock;
      let at = Net.now s.net in
      History.finish_update s.history ~now:at op;
      (* Suppressed if a restart aborted the op first: the monitor saw
         the Abort, and a respond after it would be a false "wf". *)
      if op.aborted = None then
        feed s (Obs.Monitor.Respond_update { id = op.id; at });
      unregister s node r;
      Mutex.unlock s.lock;
      tele s node Telem.update_end;
      resolve r `Done
  | exception Node.Crashed ->
      (* The op stays pending in the history (the node crashed mid-op,
         exactly the model's pending operation); re-raise so the node's
         run loop unwinds. *)
      tele s node Telem.update_end;
      resolve r `Aborted;
      raise Node.Crashed

let run_scan s ~node r () =
  tele s node Telem.scan_begin;
  Mutex.lock s.lock;
  let at = Net.now s.net in
  let op = History.begin_scan s.history ~now:at ~node in
  feed_invoke s ~at op;
  Mutex.unlock s.lock;
  match s.ops.op_scan ~node with
  | snap ->
      Mutex.lock s.lock;
      let at = Net.now s.net in
      History.finish_scan s.history ~now:at op ~snap;
      if op.aborted = None then
        feed s (Obs.Monitor.Respond_scan { id = op.id; at; snap });
      unregister s node r;
      Mutex.unlock s.lock;
      r.snap <- Some snap;
      tele s node Telem.scan_end;
      resolve r `Done
  | exception Node.Crashed ->
      tele s node Telem.scan_end;
      resolve r `Aborted;
      raise Node.Crashed

(* Group commit: run the queued updates of one node as a single
   protocol-level write of the LAST queued value. Correctness argument
   (DESIGN.md section 6): bases are prefix-closed in per-node program
   order, so a base containing the fused write's value implies every
   coalesced earlier value — linearize the skipped updates immediately
   before the fused one. Only the fused write enters the checked
   history; the coalesced requests are acknowledged as front-end
   write-backs once it completes.

   Submission is lock-free: clients push into the node's MPMC
   sub-queue, and the first pusher after an empty drain CAS-claims
   [batch_draining] and posts this work item. The drainer resets the
   flag only after seeing the queue empty, then re-checks — a producer
   that pushed between the empty pop and the reset saw the flag still
   true and scheduled nothing, so the drainer must reschedule itself
   (flag handoff, same shape as the eventcount's re-check). *)
let rec drain_batch s node () =
  let rec take acc =
    match Mpmc.pop_opt s.batch_q.(node) with
    | Some it -> take (it :: acc)
    | None -> List.rev acc
  in
  match take [] with
  | [] ->
      Atomic.set s.batch_draining.(node) false;
      if not (Mpmc.is_empty s.batch_q.(node)) then reschedule s node
  | items -> (
      (* [take] pops oldest-first, so the fused value is the last. *)
      let v = fst (List.nth items (List.length items - 1)) in
      Mutex.lock s.lock;
      s.fused_away <- s.fused_away + List.length items - 1;
      let at = Net.now s.net in
      let op = History.begin_update s.history ~now:at ~node ~value:v in
      feed_invoke s ~at op;
      Mutex.unlock s.lock;
      tele s node (fun nd ->
          Telem.fuse nd ~n:(List.length items);
          Telem.update_begin nd);
      match s.ops.op_update ~node v with
      | () ->
          Mutex.lock s.lock;
          let at = Net.now s.net in
          History.finish_update s.history ~now:at op;
          if op.aborted = None then
            feed s (Obs.Monitor.Respond_update { id = op.id; at });
          Mutex.unlock s.lock;
          tele s node Telem.update_end;
          List.iter (fun (_, r) -> resolve r `Done) items;
          drain_batch s node ()
      | exception Node.Crashed ->
          tele s node Telem.update_end;
          (* Popped but unfinished: abort them ourselves — the crash
             sweep can no longer see them. [resolve] is idempotent, so
             racing the sweep over not-yet-popped items is safe. *)
          List.iter (fun (_, r) -> resolve r `Aborted) items;
          raise Node.Crashed)

and reschedule s node =
  if Atomic.compare_and_set s.batch_draining.(node) false true then
    if not (Net.post_work s.net node (drain_batch s node)) then
      (* Crashed: the sweep owns the queue now. *)
      Atomic.set s.batch_draining.(node) false

let submit_direct s ~node work =
  let r = new_reply () in
  Mutex.lock s.lock;
  let accepted =
    if Net.is_crashed s.net node then false
    else begin
      s.in_flight.(node) <- r :: s.in_flight.(node);
      if Net.post_work s.net node (work r) then true
      else begin
        (* Poisoned between the check and the post; nothing will run. *)
        unregister s node r;
        false
      end
    end
  in
  Mutex.unlock s.lock;
  if accepted then ((await_reply r :> [ `Done | `Aborted | `Rejected ]), r)
  else (`Rejected, r)

(* Lock-free batched submission: push, make sure a drainer is (or will
   be) running, then handle the one race the queue cannot: a crash
   sweep that drained *before* our push landed would strand the reply
   forever, so after the push we re-check the crash flag and abort our
   own request — idempotently, so losing the race to the sweep, the
   restart drain, or even a completing drainer is harmless. *)
let submit_batched_update s ~node v =
  if Net.is_crashed s.net node then `Rejected
  else begin
    let r = new_reply () in
    Mpmc.push s.batch_q.(node) (v, r);
    if not (Atomic.get s.batch_draining.(node)) then reschedule s node;
    if Net.is_crashed s.net node then resolve r `Aborted;
    (await_reply r :> [ `Done | `Aborted | `Rejected ])
  end

let fresh_value s = Atomic.fetch_and_add s.next_value 1

let update s ~node v =
  if s.batch then submit_batched_update s ~node v
  else fst (submit_direct s ~node (fun r -> run_update s ~node v r))

let scan s ~node =
  match submit_direct s ~node (fun r -> run_scan s ~node r) with
  | `Done, r -> (
      match r.snap with Some snap -> `Snap snap | None -> assert false)
  | `Aborted, _ -> `Aborted
  | `Rejected, _ -> `Rejected

(* Abort everything queued for node [i]'s group commit. Runs as a
   concurrent MPMC consumer: racing the dying drainer (it aborts what
   it already popped) and late pushers (they self-abort after their
   post-push re-check) is safe because [resolve] is idempotent. *)
let sweep_batch s i =
  let rec sweep () =
    match Mpmc.pop_opt s.batch_q.(i) with
    | Some (_, r) ->
        resolve r `Aborted;
        sweep ()
    | None -> ()
  in
  sweep ();
  (* The drain flag belongs to the dead incarnation: without this reset,
     a post-restart batched update would see [batch_draining] still true,
     queue itself, and wait forever for a drain work item that died with
     the old domain. *)
  Atomic.set s.batch_draining.(i) false

let crash_node s i =
  Net.crash s.net i;
  Mutex.lock s.lock;
  let victims = s.in_flight.(i) in
  s.in_flight.(i) <- [];
  Mutex.unlock s.lock;
  sweep_batch s i;
  (* Items popped from the mailbox but not yet finished unwind through
     [Node.Crashed] and resolve themselves; everything else is resolved
     here. Either way [resolve] fires exactly once per reply. *)
  List.iter (fun r -> resolve r `Aborted) victims

let restart_node s i =
  if not (Net.is_crashed s.net i) then
    invalid_arg "Rt.Service.restart_node: node is not crashed";
  let t_restart = Net.now s.net in
  Mutex.lock s.lock;
  s.recovering.(i) <- true;
  (* Restart is not resurrection: whatever the old incarnation left
     pending in the history is aborted now — the new incarnation's
     operations are fresh invocations by the same node id. The abort
     timestamp is re-read inside the lock: [t_restart] was taken before
     acquisition, and a concurrent op stamped in between would make the
     feed run backwards. *)
  let t_abort = Net.now s.net in
  List.iter
    (fun (op : History.op) ->
      if op.node = i then begin
        History.abort s.history ~now:t_abort op;
        feed s (Obs.Monitor.Abort { id = op.id; at = t_abort })
      end)
    (History.pending s.history);
  Mutex.unlock s.lock;
  (* Stragglers that pushed between the crash sweep and now have
     already self-aborted their replies; drop their queue entries and
     re-arm the drain flag before the node serves again. *)
  sweep_batch s i;
  let replayed = Persist.Store.size s.stores.(i) in
  (* The dead domain has exited, so this thread owns the node: reset the
     protocol's volatile state BEFORE reviving the network (the same
     order as the simulator restart — no message may reach a half-reset
     node), then run the blocking rejoin as the first work item of the
     fresh domain. *)
  let t_replay0 = Net.now s.net in
  s.ops.op_begin_recovery ~node:i;
  let t_replay1 = Net.now s.net in
  Net.restart s.net i;
  let posted =
    Net.post_work s.net i (fun () ->
        (* The replay ran on the restarter thread while the node's domain
           was provably dead; the fresh incarnation stamps it into its
           own ring retroactively (explicit timestamps), so the ring
           still has a single writer. *)
        tele s i (fun nd ->
            Telem.replay nd ~t0:t_replay0 ~t1:t_replay1;
            Telem.rejoin_begin nd);
        s.ops.op_recover ~node:i;
        tele s i Telem.rejoin_end;
        let ready = Net.now s.net -. t_restart in
        (* Probe SCAN: the recovered node's first served operation,
           stamped into the checked history like any client request. *)
        Mutex.lock s.lock;
        let at = Net.now s.net in
        let op = History.begin_scan s.history ~now:at ~node:i in
        feed_invoke s ~at op;
        Mutex.unlock s.lock;
        let snap = s.ops.op_scan ~node:i in
        Mutex.lock s.lock;
        let at = Net.now s.net in
        History.finish_scan s.history ~now:at op ~snap;
        if op.aborted = None then
          feed s (Obs.Monitor.Respond_scan { id = op.id; at; snap });
        s.recovering.(i) <- false;
        s.recoveries <-
          {
            rec_node = i;
            rec_replayed = replayed;
            rec_ready_after = ready;
            rec_first_op = Net.now s.net -. t_restart;
          }
          :: s.recoveries;
        Mutex.unlock s.lock)
  in
  if not posted then
    (* Crashed again between restart and the post; leave it down. *)
    ()

let attach_stores core stores =
  Array.iteri
    (fun i store -> LC.set_store (LC.node core i) store)
    stores

let ops_of algo b ~f ~stores ~mutation =
  match algo with
  | Eq_aso ->
      let t = Aso_core.Eq_aso.create_on b ~f in
      attach_stores (Aso_core.Eq_aso.core t) stores;
      LC.set_mutation (Aso_core.Eq_aso.core t) mutation;
      {
        op_update = (fun ~node v -> Aso_core.Eq_aso.update t ~node v);
        op_scan = (fun ~node -> Aso_core.Eq_aso.scan t ~node);
        op_begin_recovery =
          (fun ~node -> Aso_core.Eq_aso.begin_recovery t ~node);
        op_recover = (fun ~node -> Aso_core.Eq_aso.recover t ~node);
      }
  | Sso_fast_scan ->
      let t = Aso_core.Sso.create_on b ~f in
      attach_stores (Aso_core.Sso.core t) stores;
      LC.set_mutation (Aso_core.Sso.core t) mutation;
      {
        op_update = (fun ~node v -> Aso_core.Sso.update t ~node v);
        op_scan = (fun ~node -> Aso_core.Sso.scan t ~node);
        op_begin_recovery = (fun ~node -> Aso_core.Sso.begin_recovery t ~node);
        op_recover = (fun ~node -> Aso_core.Sso.recover t ~node);
      }

let create ?(batch = false) ?(recorder = true) ?(online = false)
    ?monitor_throttle ?parking ?mutation ?wal_dir ~algo ~n ~f () =
  (* Causal stamping rides with the online monitor: the verdict's slice
     is built from the network's vector-clock log. *)
  let net = Net.create ~recorder ~causal:online ?parking ~n () in
  (* Every node gets a durable store: file-backed WALs under [wal_dir]
     when given (the real crash-recovery path — survives the process),
     in-memory otherwise (models durable memory; survives [crash_node],
     which only tears down the domain). *)
  let stores =
    Array.init n (fun i ->
        match wal_dir with
        | Some dir ->
            Persist.Store.file
              (Filename.concat dir (Printf.sprintf "node-%d.wal" i))
        | None -> Persist.Store.mem_store (Persist.Store.mem ()))
  in
  let ops = ops_of algo (Net.backend net) ~f ~stores ~mutation in
  let m = Net.metrics net in
  let live =
    if online then
      let mode =
        match algo with
        | Eq_aso -> Obs.Monitor.Atomic
        | Sso_fast_scan -> Obs.Monitor.Sequential
      in
      Some
        (Live_monitor.create ~mode ?causal:(Net.causal net)
           ?throttle:monitor_throttle ~metrics:m
           ~now:(fun () -> Net.now net)
           ~n ())
    else None
  in
  {
    net;
    n;
    f;
    ops;
    stores;
    batch;
    lock = Mutex.create ();
    history = History.create ();
    in_flight = Array.make n [];
    batch_q = Array.init n (fun _ -> Mpmc.create ());
    batch_draining = Array.init n (fun _ -> Atomic.make false);
    recovering = Array.make n false;
    recoveries = [];
    fused_away = 0;
    next_value = Atomic.make 1;
    tnodes =
      (match Net.telem net with
      | Some tl -> Array.init n (fun i -> Some (Telem.node tl i))
      | None -> Array.make n None);
    live;
    c_updates_ok = Obs.Metrics.counter m "svc.updates_ok";
    c_scans_ok = Obs.Metrics.counter m "svc.scans_ok";
    c_rejected = Obs.Metrics.counter m "svc.rejected";
    c_aborted = Obs.Metrics.counter m "svc.aborted";
    h_update_lat = Obs.Metrics.log_histogram m "svc.update_latency_s";
    h_scan_lat = Obs.Metrics.log_histogram m "svc.scan_latency_s";
  }

let start s =
  Net.start s.net;
  Option.iter Live_monitor.start s.live

let stop s =
  Net.stop s.net;
  (* Drain-then-join: every event stamped before the domains stopped is
     still checked, so a violation near the end of the run is caught
     here rather than left to the batch pass. *)
  Option.iter (fun lm -> ignore (Live_monitor.stop lm : _ option)) s.live

let history s = s.history
let net s = s.net
let live_monitor s = s.live
let metrics s = Net.metrics s.net
let recorder s = Net.recorder s.net
let stats_snapshot s = Obs.Metrics.snapshot (Net.metrics s.net)

(* {2 The closed-loop load service} *)

type report = {
  algorithm : string;
  backend : string;
  rep_n : int;
  rep_f : int;
  clients : int;
  batched : bool;
  duration : float;
  completed_updates : int;
  completed_scans : int;
  rejected : int;
  aborted : int;
  fused_updates : int;
  ops_per_sec : float;
  update_lat : Obs.Hdr.dist;  (** client-observed, seconds *)
  scan_lat : Obs.Hdr.dist;
  crashed_nodes : int list;
  recoveries : recovery list;
  messages_sent : int;
  final_metrics : Obs.Metrics.snapshot;
  history : History.t;
  live_verdict : Live_monitor.verdict option;
      (** the live monitor's violation, when one tripped mid-run *)
  monitor_events_checked : int;
  monitor_scans_verified : int;
}

let rec pick_node s home j =
  if j >= s.n then None
  else
    let c = (home + j) mod s.n in
    if Net.is_crashed s.net c || s.recovering.(c) then pick_node s home (j + 1)
    else Some c

(* Clients record straight into the deployment's registry: the counters
   and log-histograms are atomic, so concurrent client threads need no
   per-client state, and the live telemetry endpoint sees every
   completion as it happens. *)
let monitor_tripped s =
  match s.live with
  | Some lm -> Live_monitor.tripped lm <> None
  | None -> false

let client_loop s ~deadline ~scan_fraction rng home =
  let live = ref true in
  (* Halt intake the moment the live monitor trips: a violated object
     must stop serving, and the early exit is what makes mid-run
     detection observable (the run ends well before the deadline). *)
  while !live && Net.now s.net < deadline && not (monitor_tripped s) do
    match pick_node s home 0 with
    | None -> live := false
    | Some node ->
        let t0 = Net.now s.net in
        if Random.State.float rng 1.0 < scan_fraction then (
          match scan s ~node with
          | `Snap _ ->
              Obs.Metrics.incr s.c_scans_ok;
              Obs.Metrics.record s.h_scan_lat (Net.now s.net -. t0)
          | `Rejected -> Obs.Metrics.incr s.c_rejected
          | `Aborted -> Obs.Metrics.incr s.c_aborted)
        else
          match update s ~node (fresh_value s) with
          | `Done ->
              Obs.Metrics.incr s.c_updates_ok;
              Obs.Metrics.record s.h_update_lat (Net.now s.net -. t0)
          | `Rejected -> Obs.Metrics.incr s.c_rejected
          | `Aborted -> Obs.Metrics.incr s.c_aborted
  done

let run ?(batch = false) ?(recorder = true) ?(online = false) ?monitor_throttle
    ?parking ?mutation ?on_start ?(scan_fraction = 0.2) ?(seed = 42)
    ?(crash = []) ?crash_after ?restart_after ?wal_dir ~algo ~n ~f ~clients
    ~secs () =
  if clients <= 0 then invalid_arg "Rt.Service.run: clients must be positive";
  if secs <= 0. then invalid_arg "Rt.Service.run: secs must be positive";
  let crash = List.sort_uniq compare crash in
  if List.length crash > f then
    invalid_arg "Rt.Service.run: cannot crash more than f nodes";
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Rt.Service.run: crash node out of range")
    crash;
  let crash_delay = Option.value crash_after ~default:(secs /. 2.) in
  (match restart_after with
  | Some r when r <= crash_delay ->
      invalid_arg "Rt.Service.run: restart_after must be after the crash"
  | _ -> ());
  let s =
    create ~batch ~recorder ~online ?monitor_throttle ?parking ?mutation
      ?wal_dir ~algo ~n ~f ()
  in
  start s;
  Option.iter (fun f -> f s) on_start;
  let t_start = Net.now s.net in
  let deadline = t_start +. secs in
  let crasher =
    match crash with
    | [] -> None
    | nodes ->
        Some
          (Thread.create
             (fun () ->
               Thread.delay crash_delay;
               List.iter (fun i -> crash_node s i) nodes;
               match restart_after with
               | None -> ()
               | Some r ->
                   Thread.delay (r -. crash_delay);
                   List.iter
                     (fun i ->
                       if Net.is_crashed s.net i then restart_node s i)
                     nodes)
             ())
  in
  let threads =
    Array.init clients (fun i ->
        let rng = Random.State.make [| seed; i |] in
        Thread.create
          (fun () -> client_loop s ~deadline ~scan_fraction rng (i mod n))
          ())
  in
  Array.iter Thread.join threads;
  Option.iter Thread.join crasher;
  let duration = Net.now s.net -. t_start in
  stop s;
  let live_verdict = Option.bind s.live Live_monitor.tripped in
  let snapshot = Obs.Metrics.snapshot (Net.metrics s.net) in
  let completed_updates = Obs.Metrics.count s.c_updates_ok in
  let completed_scans = Obs.Metrics.count s.c_scans_ok in
  let total = completed_updates + completed_scans in
  {
    algorithm = algo_name algo;
    backend = "rt";
    rep_n = n;
    rep_f = f;
    clients;
    batched = batch;
    duration;
    completed_updates;
    completed_scans;
    rejected = Obs.Metrics.count s.c_rejected;
    aborted = Obs.Metrics.count s.c_aborted;
    fused_updates = s.fused_away;
    ops_per_sec = (if duration > 0. then float_of_int total /. duration else 0.);
    update_lat = Obs.Hdr.snapshot (Obs.Metrics.hdr s.h_update_lat);
    scan_lat = Obs.Hdr.snapshot (Obs.Metrics.hdr s.h_scan_lat);
    crashed_nodes = crash;
    recoveries = List.rev s.recoveries;
    messages_sent =
      Option.value (Obs.Metrics.find_count snapshot "net.sent") ~default:0;
    final_metrics = snapshot;
    history = s.history;
    live_verdict;
    monitor_events_checked =
      (match s.live with Some lm -> Live_monitor.events_checked lm | None -> 0);
    monitor_scans_verified =
      (match s.live with Some lm -> Live_monitor.scans_verified lm | None -> 0);
  }

(* Bench feed: everything here is timing-dependent, hence volatile (the
   CI drift gate must not compare it run-to-run beyond a sanity floor). *)
let volatile_metrics r =
  let mean f =
    match r.recoveries with
    | [] -> 0.
    | l ->
        List.fold_left (fun acc x -> acc +. f x) 0. l
        /. float_of_int (List.length l)
  in
  [
    ("ops_per_sec", r.ops_per_sec);
    ("completed_updates", float_of_int r.completed_updates);
    ("completed_scans", float_of_int r.completed_scans);
    ("fused_updates", float_of_int r.fused_updates);
    ("messages_sent", float_of_int r.messages_sent);
    ("aborted", float_of_int r.aborted);
    ("recoveries", float_of_int (List.length r.recoveries));
    ("recovery_ready_s", mean (fun x -> x.rec_ready_after));
    ("recovery_first_op_s", mean (fun x -> x.rec_first_op));
    ("recovery_replayed", mean (fun x -> float_of_int x.rec_replayed));
  ]
