(** The rt backend's flight-recorder vocabulary: one {!Obs.Recorder}
    ring per node and the interned event codes the instrumentation sites
    share. Created by {!Net.create} before any domain runs (interning is
    setup-time only); the per-event helpers below are allocation-free
    and must be called by the domain owning the node — the recorder's
    single-writer contract.

    Event names (the Perfetto vocabulary):
    - [op.update], [op.scan] — spans around each operation on its home
      node's domain;
    - [park.wait] — instant, value = seconds the node slept before the
      mailbox refilled;
    - [mailbox.depth] — counter, sampled after each blocking receive;
    - [batch.fuse] — counter, value = UPDATEs fused into one quorum
      write;
    - [recover.replay], [recover.rejoin] — spans around the WAL replay
      and rejoin phases of a crash-restart;
    - [net.msg] — flow-event pairs tying each send to its cross-domain
      delivery (Perfetto renders them as arrows between node tracks). *)

type t
type node

val create : ?capacity:int -> n:int -> now:(unit -> float) -> unit -> t
val recorder : t -> Obs.Recorder.t
val node : t -> int -> node
val now : node -> float

val update_begin : node -> unit
val update_end : node -> unit
val scan_begin : node -> unit
val scan_end : node -> unit
val park : node -> secs:float -> unit
val depth : node -> n:int -> unit
val fuse : node -> n:int -> unit
val replay : node -> t0:float -> t1:float -> unit
(** Retroactive [recover.replay] span with explicit timestamps: the
    replay itself runs on the restarter thread while the node's domain
    is dead, and the fresh incarnation stamps it afterwards — the only
    sanctioned off-domain measurement. *)

val rejoin_begin : node -> unit
val rejoin_end : node -> unit

val flow_send : node -> flow:int -> unit
(** [net.msg] departure on the sending node's ring; call from the
    sending domain. *)

val flow_recv : node -> flow:int -> unit
(** Matching arrival on the receiving node's ring; call from the
    receiving domain ({!Node.set_on_deliver}). *)
