(** A protocol node as an OCaml 5 domain with a lock-free mailbox.

    One {!Queue} MPSC mailbox, one domain running {!run}. The mailbox
    carries three kinds of items: network messages (dispatched to the
    installed handler), operation thunks ([Work], posted by the service
    front-end), and [Stop]. The execution contract mirrors the
    simulator's: handlers are atomic (one mailbox item at a time, on the
    node's own domain), and operation code interleaves with handlers
    only inside {!await}, which pumps the mailbox itself while its
    predicate is false — so a blocked UPDATE keeps acking other nodes'
    quorum phases, exactly like a simulator fiber parked on a condition
    while the engine delivers messages.

    {b Crash = poisoned mailbox}: {!crash} marks the node, after which
    {!post} drops everything and the next blocking receive raises
    {!Crashed}, unwinding whatever operation was running. The domain's
    run loop catches it and exits; the node never speaks again. *)

exception Crashed
(** Raised by a blocking receive on a poisoned (crashed) node; unwinds
    the operation running on the node's domain. *)

type meta = { flow : int; stamp : Obs.Vclock.t }
(** Causal metadata riding next to a network payload: the sender's
    vector-clock stamp and the flow id pairing this send with its
    delivery. Protocol message types stay untouched — this mirrors the
    sim transport's out-of-band stamping. *)

type 'm item =
  | Net of { src : int; msg : 'm; meta : meta option }
  | Work of (unit -> unit)
  | Stop

type 'm t

type parking = [ `Mutex | `Eventcount ]
(** How the node domain sleeps on an empty mailbox. [`Eventcount]
    (default): spin briefly, then register on a {!Park} eventcount —
    producers pay one atomic read per post while the node is awake.
    [`Mutex]: the original mutex+condition park, kept for before/after
    benchmarking. Semantics are identical (same wakeup guarantees, same
    crash behaviour); only the cost model differs. *)

val create : ?parking:parking -> int -> 'm t
val id : _ t -> int

val set_handler : 'm t -> (src:int -> 'm -> unit) -> unit
(** Install the message handler. Must happen before {!start}. *)

val set_on_deliver : 'm t -> (src:int -> meta -> unit) -> unit
(** Install the delivery observer: called on the node's own domain just
    before the handler, for every [Net] item carrying [meta]. Must
    happen before {!start}. {!Net} uses it to merge the piggy-backed
    vector-clock stamp and emit the receive-side flow event. *)

val set_telem : 'm t -> Telem.node option -> unit
(** Attach this node's flight-recorder ring. Must happen before
    {!start}: the ring is written from the node's domain (depth samples
    after each receive, park-wait instants on the slow path), honouring
    the recorder's single-writer contract. *)

val post : 'm t -> 'm item -> bool
(** Enqueue from any domain; wakes the node if parked. [false] if the
    node is crashed (the item is dropped — a crashed node receives
    nothing). *)

val await : 'm t -> (unit -> bool) -> unit
(** Node-domain only: block until the predicate holds, running message
    handlers and deferring [Work] in the meantime.
    @raise Crashed if the node is poisoned while waiting. *)

val crash : 'm t -> unit
(** Poison the mailbox and wake the domain so it observes the crash even
    if idle. Callable from any domain; idempotent. *)

val is_crashed : _ t -> bool

val run : 'm t -> unit
(** The node loop: handle messages, run work thunks (draining any work
    deferred by their awaits, FIFO), exit on [Stop] or {!Crashed}.
    Exposed for tests; normal use is {!start}/{!join}. *)

val start : 'm t -> unit
(** Spawn the node's domain running {!run}. *)

val join : 'm t -> unit
(** Wait for the node's domain to exit (after [Stop] was posted or the
    node crashed). Idempotent. *)

val restart : 'm t -> unit
(** Revive a crashed node: join its dead domain, drain the mailbox and
    deferred work (the old incarnation's channel state — lost in the
    crash), unpoison, and spawn a fresh domain running {!run} with the
    handler still installed. The caller is responsible for resetting
    protocol-level volatile state {e before} calling this — once the new
    domain is up, messages flow again.
    @raise Invalid_argument if the node is not crashed. *)
