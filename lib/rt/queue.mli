(** Lock-free multi-producer single-consumer queue.

    The rt backend's mailbox primitive: any domain may {!push}
    concurrently; exactly one domain (the owning node) may call
    {!pop_opt}/{!is_empty}. Laws, checked by the qcheck suite in
    [test_rt]:

    - {b per-producer FIFO}: two pushes by the same domain are popped in
      push order (this is what carries the simulator's reliable-FIFO
      channel guarantee over to rt — each (src, dst) channel has a
      single producer);
    - {b no loss, no duplication}: the multiset of popped elements
      equals the multiset of pushed elements once producers are done;
    - {b serialized-consumer linearizability}: with one consumer the
      queue behaves like a FIFO merge of the producers' sequences.

    {b Caveat} (inherent to the Vyukov construction): a [push] swaps the
    shared tail {e then} links the new node, so a concurrent {!pop_opt}
    in that window can report the queue empty while elements sit
    unlinked. Consumers that intend to sleep on empty must park under a
    lock and rely on a producer-side signal {e after} [push] returns,
    which is exactly what {!Node}'s mailbox does. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Wait-free apart from one [Atomic.exchange]; safe from any domain. *)

val pop_opt : 'a t -> 'a option
(** Consumer only. [None] when the (linked part of the) queue is
    empty. *)

val is_empty : 'a t -> bool
(** Consumer only; same transient-emptiness caveat as {!pop_opt}. *)

val length : 'a t -> int
(** Approximate occupancy, safe from any domain. Exact whenever no push
    or pop is in flight; momentarily off by the number of in-flight
    operations otherwise. Telemetry-grade — never use it to decide
    emptiness (see {!is_empty}'s caveat). *)
