(** Lock-free multi-producer single-consumer queue.

    The rt backend's mailbox primitive: any domain may {!push}
    concurrently; exactly one domain (the owning node) may call
    {!pop_opt}/{!is_empty}. Laws, checked by the qcheck suite in
    [test_rt] and the STM + exhaustive-interleaving suites in
    [test_verif]:

    - {b per-producer FIFO}: two pushes by the same domain are popped in
      push order (this is what carries the simulator's reliable-FIFO
      channel guarantee over to rt — each (src, dst) channel has a
      single producer);
    - {b no loss, no duplication}: the multiset of popped elements
      equals the multiset of pushed elements once producers are done;
    - {b serialized-consumer linearizability}: with one consumer the
      queue behaves like a FIFO merge of the producers' sequences.

    {b Caveat} (inherent to the Vyukov construction): a [push] swaps the
    shared tail {e then} links the new node, so a concurrent {!pop_opt}
    in that window can report the queue empty while elements sit
    unlinked. Consumers that intend to sleep on empty must park under an
    eventcount ({!Park}) and rely on a producer-side signal {e after}
    [push] returns, which is exactly what {!Node}'s mailbox does. The
    explorer program in [test_verif] pins this contract: pop may
    stutter [None] mid-push, and parking on the signal protocol never
    loses the element.

    The implementation is functorized over {!Verif.Atomic_intf.S};
    production code uses the [include]d plain instantiation below. *)

type mutation =
  | Skip_link
      (** [push] omits the [prev.next] publication — the pushed element
          is reachable from [tail] but never from [head]: a lost
          element, and a parked consumer that never wakes. *)
  | No_advance
      (** [pop_opt] returns the front element but does not advance
          [head]: duplication. *)

module type S = sig
  type 'a t

  val create : ?mutation:mutation -> unit -> 'a t
  (** [mutation] plants a seeded bug for the explorer's self-test; omit
      it (all production callers do) for the correct queue. *)

  val push : 'a t -> 'a -> unit
  (** Wait-free apart from one [Atomic.exchange]; safe from any
      domain. *)

  val pop_opt : 'a t -> 'a option
  (** Consumer only. [None] when the (linked part of the) queue is
      empty. *)

  val is_empty : 'a t -> bool
  (** Consumer only; same transient-emptiness caveat as {!pop_opt}. *)

  val nonempty_spy : 'a t -> bool
  (** Untraced (never a scheduling point under the explorer) probe:
      [true] iff a linked element is visible. For park predicates and
      telemetry only. *)

  val length : 'a t -> int
  (** Approximate occupancy, safe from any domain. Exact whenever no
      push or pop is in flight; at any instant off by at most the
      number of in-flight operations (bounded by the producer count +
      1), because each push/pop moves it by exactly one after its
      linearization. Telemetry-grade — never use it to decide emptiness
      (see {!is_empty}'s caveat). *)
end

module Make (A : Verif.Atomic_intf.S) : S

include S
