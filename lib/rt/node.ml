exception Crashed

(* Causal metadata piggy-backed on a network message: the sender's
   vector-clock stamp and the flow id tying this send to its delivery.
   Rides next to the payload — protocol message types stay untouched,
   mirroring how the sim's transport carries stamps out of band. *)
type meta = { flow : int; stamp : Obs.Vclock.t }

type 'm item =
  | Net of { src : int; msg : 'm; meta : meta option }
  | Work of (unit -> unit)
  | Stop

type parking = [ `Mutex | `Eventcount ]

(* Two park implementations. [PEvent] (default) is the lock-free
   eventcount: producers pay one atomic read on post; the consumer
   spins briefly, then registers and sleeps on the eventcount's
   terminal condvar. [PMutex] is the original mutex+condition park,
   kept alive so the bench table can report before/after on the same
   binary. *)
type park_impl =
  | PMutex of {
      lock : Mutex.t;
      nonempty : Condition.t;
      (* True while the node domain sleeps in [next]; producers only
         pay for the lock/signal when someone is actually parked. Set
         under [lock] (so a parked flag implies the consumer holds or
         is inside the wait), read without it. *)
      parked : bool Atomic.t;
    }
  | PEvent of Park.t

type 'm t = {
  id : int;
  mbox : 'm item Queue.t;
  park : park_impl;
  poisoned : bool Atomic.t;
  mutable handler : src:int -> 'm -> unit;
  (* Delivery observer: runs on this node's domain just before the
     handler, for every Net item carrying causal [meta]. Installed
     before [start] (like the handler); the vclock merge and the
     receive-side flow event live here. *)
  mutable on_deliver : src:int -> meta -> unit;
  (* Work items that arrived while an operation was blocked in [await]:
     they must not run in the middle of that operation (nodes are
     sequential), so the pump parks them here and the run loop drains
     them FIFO once the current operation returns. *)
  mutable deferred_rev : (unit -> unit) list;
  mutable stop : bool;
  mutable domain : unit Domain.t option;
  (* Flight-recorder handle; written only from this node's own domain
     (receive-side events), matching the recorder's single-writer
     contract. Installed before [start], like the handler. *)
  mutable telem : Telem.node option;
}

(* How long the consumer spins (polling the mailbox, [cpu_relax]ing)
   before it registers as an eventcount waiter. Small: under load an
   item arrives within the spin and the park machinery is never
   touched; idle, 64 relaxes cost ~100ns before the real sleep. *)
let spin_budget = 64

let create ?(parking = `Eventcount) id =
  {
    id;
    mbox = Queue.create ();
    park =
      (match parking with
      | `Mutex ->
          PMutex
            {
              lock = Mutex.create ();
              nonempty = Condition.create ();
              parked = Atomic.make false;
            }
      | `Eventcount -> PEvent (Park.create ()));
    poisoned = Atomic.make false;
    handler = (fun ~src:_ _ -> ());
    on_deliver = (fun ~src:_ _ -> ());
    deferred_rev = [];
    stop = false;
    domain = None;
    telem = None;
  }

let id t = t.id
let set_handler t h = t.handler <- h
let set_on_deliver t f = t.on_deliver <- f

let deliver t ~src ~meta msg =
  (match meta with Some m -> t.on_deliver ~src m | None -> ());
  t.handler ~src msg
let set_telem t tl = t.telem <- tl
let is_crashed t = Atomic.get t.poisoned

let post t item =
  if Atomic.get t.poisoned then false
  else begin
    Queue.push t.mbox item;
    (* The push above is linked before this signal, so either the
       consumer already registered (we wake it) or its re-check after
       registering finds the item — no lost wakeup; see [Park] for the
       eventcount argument and [Queue] for why the signal must come
       after [push] returns. *)
    (match t.park with
    | PMutex p ->
        if Atomic.get p.parked then begin
          Mutex.lock p.lock;
          Condition.broadcast p.nonempty;
          Mutex.unlock p.lock
        end
    | PEvent ec -> Park.signal ec);
    true
  end

let wake t =
  match t.park with
  | PMutex p ->
      Mutex.lock p.lock;
      Condition.broadcast p.nonempty;
      Mutex.unlock p.lock
  | PEvent ec -> Park.wake_all ec

let crash t =
  Atomic.set t.poisoned true;
  wake t

(* Blocking receive, node domain only. Fast path is a plain lock-free
   pop. The eventcount slow path spins briefly, then runs the
   prepare/re-check/wait dance from [Park]; the poisoned flag is
   re-checked after every registration so a crash (which bumps the
   eventcount unconditionally) unwinds a sleeping node. Telemetry rides
   the receive side: after every pop we sample the remaining mailbox
   depth, and a slow-path pop additionally records how long the domain
   was parked — both written to this node's own ring (we are its single
   writer). *)
let next t =
  if Atomic.get t.poisoned then raise Crashed;
  match Queue.pop_opt t.mbox with
  | Some item ->
      (match t.telem with
      | Some nd -> Telem.depth nd ~n:(Queue.length t.mbox)
      | None -> ());
      item
  | None ->
      let t_park = match t.telem with Some nd -> Telem.now nd | None -> 0. in
      let item =
        match t.park with
        | PMutex p ->
            Mutex.lock p.lock;
            Atomic.set p.parked true;
            Fun.protect
              ~finally:(fun () ->
                Atomic.set p.parked false;
                Mutex.unlock p.lock)
              (fun () ->
                let rec wait () =
                  match Queue.pop_opt t.mbox with
                  | Some item -> item
                  | None ->
                      if Atomic.get t.poisoned then raise Crashed;
                      Condition.wait p.nonempty p.lock;
                      wait ()
                in
                wait ())
        | PEvent ec ->
            let rec slow spins =
              if Atomic.get t.poisoned then raise Crashed;
              match Queue.pop_opt t.mbox with
              | Some item -> item
              | None ->
                  if spins > 0 then begin
                    Domain.cpu_relax ();
                    slow (spins - 1)
                  end
                  else begin
                    let ticket = Park.prepare ec in
                    if Atomic.get t.poisoned then begin
                      Park.cancel ec;
                      raise Crashed
                    end;
                    (* Mandatory re-check between registering and
                       sleeping: a push that raced our registration
                       either is visible here or saw our waiter count
                       and will bump the sequence. *)
                    match Queue.pop_opt t.mbox with
                    | Some item ->
                        Park.cancel ec;
                        item
                    | None ->
                        Park.wait ec ticket;
                        Park.finish ec;
                        slow spin_budget
                  end
            in
            slow spin_budget
      in
      (match t.telem with
      | Some nd ->
          Telem.park nd ~secs:(Telem.now nd -. t_park);
          Telem.depth nd ~n:(Queue.length t.mbox)
      | None -> ());
      item

(* The operation-context wait: pump the node's own mailbox until [pred]
   holds. Message handlers run inline (that is what makes the predicate
   progress); fresh operations are deferred; [Stop] is latched for the
   run loop. This reproduces the simulator's atomicity contract exactly:
   handlers interleave with operation code only at await points. *)
let await t pred =
  while not (pred ()) do
    match next t with
    | Net { src; msg; meta } -> deliver t ~src ~meta msg
    | Work f -> t.deferred_rev <- f :: t.deferred_rev
    | Stop -> t.stop <- true
  done

let rec drain_deferred t =
  match List.rev t.deferred_rev with
  | [] -> ()
  | works ->
      t.deferred_rev <- [];
      List.iter (fun f -> if not t.stop then f ()) works;
      drain_deferred t

let run t =
  try
    while not t.stop do
      match next t with
      | Net { src; msg; meta } -> deliver t ~src ~meta msg
      | Work f ->
          f ();
          drain_deferred t
      | Stop -> t.stop <- true
    done
  with Crashed -> ()

let start t = t.domain <- Some (Domain.spawn (fun () -> run t))

let join t =
  match t.domain with
  | None -> ()
  | Some d ->
      t.domain <- None;
      Domain.join d

(* Restart = join the dead domain, discard every remnant of the old
   incarnation (queued messages and deferred work are channel/volatile
   state lost in the crash), then unpoison and spawn a fresh domain.
   Caller-serialized: the node is down for the whole call, so this
   thread is the sole consumer of the mailbox. *)
let restart t =
  if not (Atomic.get t.poisoned) then
    invalid_arg "Rt.Node.restart: node is not crashed";
  join t;
  let rec drain () =
    match Queue.pop_opt t.mbox with Some _ -> drain () | None -> ()
  in
  drain ();
  t.deferred_rev <- [];
  t.stop <- false;
  (match t.park with
  | PMutex p -> Atomic.set p.parked false
  | PEvent _ -> ());
  Atomic.set t.poisoned false;
  start t
