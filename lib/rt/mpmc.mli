(** Lock-free multi-producer multi-consumer FIFO queue (Michael–Scott).

    Any domain may {!push}; any domain may {!pop_opt}. Strictly
    linearizable against a sequential FIFO — no transient-empty caveat
    (contrast {!Queue}): an empty answer linearizes at the [head.next]
    read. Certified by [test_verif]: STM linearizability at 2, 3 and 4
    domains plus exhaustive interleaving of the CAS helping protocol
    under the traced atomics.

    Used by {!Service} for batched client submission, where many client
    domains feed one per-node batch and whichever domain wins the drain
    flag consumes it — possibly racing a crash sweep consuming the same
    queue. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Lock-free; safe from any domain. *)

  val pop_opt : 'a t -> 'a option
  (** Lock-free; safe from any domain. *)

  val is_empty : 'a t -> bool
  (** Racy snapshot, for telemetry only. *)
end

module Make (A : Verif.Atomic_intf.S) : S

include S
