(** Minimal HTTP exposition endpoint for live telemetry ([aso_demo serve
    --telemetry ADDR]): a listener thread answers every request with the
    body the render callback returns at that moment (Prometheus
    text-format scrapes are one short-lived exchange each).

    The callback runs on the listener thread — it must be safe to call
    concurrently with the deployment (e.g. render an
    {!Obs.Metrics.snapshot} through {!Obs.Expo.to_prometheus}; both are
    designed for exactly this). *)

type t

val start : addr:string -> (unit -> string) -> t
(** Bind [addr] ("HOST:PORT"; empty host means 127.0.0.1) and serve
    until {!stop}.
    @raise Invalid_argument on a malformed address;
    @raise Unix.Unix_error if the bind fails (port taken). *)

val addr : t -> string

val stop : t -> unit
(** Close the listener and join its thread. Idempotent. *)
