(* Eventcount parking: the lock-free replacement for the mailbox's
   mutex+condition park. Producers on the fast path pay a single atomic
   read ([waiters = 0] almost always under load); the mutex+condvar
   survive only as the *terminal* sleep primitive, entered by a consumer
   that has already spun and registered.

   Protocol (all SC atomics):

     consumer: prepare (waiters++; ticket := seq) → recheck queue →
               found? cancel (waiters--) : wait (block until seq ≠
               ticket) → finish (waiters--) → retry pop
     producer: push (fully linked) → signal (if waiters > 0 then seq++;
               broadcast)

   No lost wakeup: suppose the consumer sleeps forever after a push it
   never popped. Its recheck read the queue empty, so in the SC total
   order: waiters++ < ticket read < recheck(empty) < producer's link <
   producer's waiters read — which therefore sees waiters > 0 and bumps
   seq after the ticket was read, so the consumer's poll (or the condvar
   broadcast, if it already blocked — the bump and broadcast happen
   with the waiter either pre-poll, woken by the bump, or inside
   [Condition.wait], woken by the broadcast that the producer issues
   under the same mutex the waiter checked under) observes seq ≠
   ticket. Contradiction. The exhaustive-interleaving program in
   [test_verif] machine-checks exactly this argument on the traced
   atomics, and the [Lost_signal] mutation (signal forgets the seq
   bump) is one of the three seeded bugs the explorer must catch.

   Functorized over {!Verif.Atomic_intf.S}; only the counter protocol
   is functorized — the terminal mutex/condvar sleep is production-only
   and is modelled in the explorer by [Tatomic.until] on {!poll_spy}
   (the documented modelling gap; see DESIGN §6c). *)

type mutation = Lost_signal

module type S = sig
  type t

  val create : ?mutation:mutation -> unit -> t
  val prepare : t -> int
  val cancel : t -> unit
  val poll : t -> int -> bool
  val poll_spy : t -> int -> bool
  val wait : t -> int -> unit
  val finish : t -> unit
  val signal : t -> unit
  val wake_all : t -> unit
end

module Make (A : Verif.Atomic_intf.S) = struct
  type t = {
    seq : int A.t;  (* bumped by signal; sleepers poll it *)
    waiters : int A.t;  (* registered (spinning or blocked) consumers *)
    mutation : mutation option;
    mu : Mutex.t;
    cv : Condition.t;
  }

  let create ?mutation () =
    {
      (* Producers read [waiters] on every post; consumers bump it on
         every park. Own lines for each. *)
      seq = A.make_padded 0;
      waiters = A.make_padded 0;
      mutation;
      mu = Mutex.create ();
      cv = Condition.create ();
    }

  let prepare t =
    A.incr t.waiters;
    A.get t.seq

  let cancel t = A.decr t.waiters
  let finish t = A.decr t.waiters
  let poll t ticket = A.get t.seq <> ticket

  (* Untraced poll for [Tatomic.until] predicates (and nothing else). *)
  let poll_spy t ticket = A.spy t.seq <> ticket

  let signal t =
    if A.get t.waiters > 0 then begin
      (match t.mutation with
      | Some Lost_signal -> ()
      | None -> A.incr t.seq);
      Mutex.lock t.mu;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu
    end

  (* Unconditional wake (crash/stop paths): every sleeper must
     re-examine the world even if no push happened. *)
  let wake_all t =
    A.incr t.seq;
    Mutex.lock t.mu;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu

  (* Terminal sleep: only after [prepare]'s recheck came up empty. The
     poll is re-checked under the mutex, and signallers broadcast under
     the same mutex, so a bump between our check and [Condition.wait]
     cannot slip by unseen. *)
  let wait t ticket =
    Mutex.lock t.mu;
    while not (poll t ticket) do
      Condition.wait t.cv t.mu
    done;
    Mutex.unlock t.mu
end

include Make (Verif.Atomic_intf.Plain)
