(** The rt backend's network: [n] {!Node}s (one domain each) exchanging
    messages through their mailboxes.

    Mirrors the {!Sim.Network} surface the protocols consume — send,
    broadcast (self-delivery included), per-node handlers, crash — and
    exports it as a {!Backend.net} via {!backend}. Channel guarantees
    match the simulator's reliable-FIFO transport: a (src, dst) pair has
    a single producing domain, and the MPSC mailbox preserves
    per-producer order, so per-channel FIFO holds (the [Good_la]
    borrowing logic depends on it). Delivery is asynchronous with
    arbitrary (scheduler-determined) latency, which is exactly the
    asynchronous-model assumption.

    The clock ({!now}, and [Backend.now]) is monotonic wall time in
    seconds since {!create} — real-time histories, where the simulator
    reports virtual time in units of the delay bound [D]. *)

type 'm t

val create : ?recorder:bool -> ?parking:Node.parking -> n:int -> unit -> 'm t
(** Allocate nodes and register the network counters ([net.sent] etc. —
    the simulator's names). Domains are not yet running: install
    handlers (via {!backend} and the protocol constructor), then
    {!start}. [recorder] (default [true]) attaches a flight-recorder
    ring to every node ({!Telem}); pass [false] to measure its absence
    (the bench overhead rows). [parking] selects the mailbox park
    implementation (default [`Eventcount]; see {!Node.parking}). *)

val size : _ t -> int
val metrics : _ t -> Obs.Metrics.t
val node : 'm t -> int -> 'm Node.t

val telem : _ t -> Telem.t option
val recorder : _ t -> Obs.Recorder.t option
(** The flight recorder, when enabled at {!create}. *)

val now : _ t -> float
(** Monotonic seconds since {!create}. Safe from any domain. *)

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Drop silently if [src] crashed (a crashed node sends nothing) or
    [dst] crashed (a crashed node receives nothing); counted under
    [net.dropped] in the latter case. *)

val broadcast : 'm t -> src:int -> 'm -> unit
(** Send to every node, including [src] itself. *)

val backend : 'm t -> 'm Backend.net
(** The {!Backend.net} view protocols are wired onto
    ([Aso_core.Eq_aso.create_on], …). [trace] is {!Obs.Trace.noop}:
    there is no online observability on rt — completed runs are checked
    in batch. *)

val start : _ t -> unit
(** Spawn all node domains. Handlers must already be installed. *)

val stop : _ t -> unit
(** Post [Stop] everywhere and join every domain (crashed domains have
    already exited and just join). *)

val crash : _ t -> int -> unit
val is_crashed : _ t -> int -> bool

val restart : _ t -> int -> unit
(** Revive a crashed node with a fresh domain and an empty mailbox
    ({!Node.restart}); protocol volatile state must already be reset. *)

val post_work : 'm t -> int -> (unit -> unit) -> bool
(** Submit an operation thunk to run on node [i]'s domain; [false] if
    the node has crashed. *)
