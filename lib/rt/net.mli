(** The rt backend's network: [n] {!Node}s (one domain each) exchanging
    messages through their mailboxes.

    Mirrors the {!Sim.Network} surface the protocols consume — send,
    broadcast (self-delivery included), per-node handlers, crash — and
    exports it as a {!Backend.net} via {!backend}. Channel guarantees
    match the simulator's reliable-FIFO transport: a (src, dst) pair has
    a single producing domain, and the MPSC mailbox preserves
    per-producer order, so per-channel FIFO holds (the [Good_la]
    borrowing logic depends on it). Delivery is asynchronous with
    arbitrary (scheduler-determined) latency, which is exactly the
    asynchronous-model assumption.

    The clock ({!now}, and [Backend.now]) is monotonic wall time in
    seconds since {!create} — real-time histories, where the simulator
    reports virtual time in units of the delay bound [D]. *)

type 'm t

val create :
  ?recorder:bool -> ?causal:bool -> ?parking:Node.parking -> n:int -> unit ->
  'm t
(** Allocate nodes and register the network counters ([net.sent] etc. —
    the simulator's names). Domains are not yet running: install
    handlers (via {!backend} and the protocol constructor), then
    {!start}. [recorder] (default [true]) attaches a flight-recorder
    ring to every node ({!Telem}); pass [false] to measure its absence
    (the bench overhead rows). [causal] (default [false]) attaches an
    {!Obs.Vclock.recorder} and stamps every message: {!send} records the
    send, piggy-backs the flow id and the sender's clock as
    {!Node.meta} next to the untouched payload, and the delivery
    observer on the receiving domain merges the stamp — mirroring the
    sim wiring, so rt violations get the same causal-cone slices. Flow
    events ([net.msg] start/end pairs) land on the sender's and
    receiver's flight-recorder rings when both are enabled. [parking]
    selects the mailbox park implementation (default [`Eventcount]; see
    {!Node.parking}). *)

val size : _ t -> int
val metrics : _ t -> Obs.Metrics.t
val node : 'm t -> int -> 'm Node.t

val telem : _ t -> Telem.t option
val recorder : _ t -> Obs.Recorder.t option
(** The flight recorder, when enabled at {!create}. *)

val causal : _ t -> Obs.Vclock.recorder option
(** The vector-clock recorder, when enabled at {!create} — the handle
    {!Live_monitor} slices for violation provenance. *)

val now : _ t -> float
(** Monotonic seconds since {!create}. Safe from any domain. *)

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Drop silently if [src] crashed (a crashed node sends nothing) or
    [dst] crashed (a crashed node receives nothing); counted under
    [net.dropped] in the latter case. *)

val cut_link : _ t -> src:int -> dst:int -> unit
(** Fault injection (tests): silently drop every message on the
    directed link [src → dst] from now on, counted under [net.dropped].
    Safe to poke from any thread while the deployment runs. The
    asynchronous model lets messages between live nodes stall
    arbitrarily long, so a cut link is within the envelope the
    protocols must tolerate for {e safety} — a correct quorum write
    blocks rather than completes when too many links are out, which is
    exactly what the quorum-mutant live-monitor test exploits. *)

val heal_link : _ t -> src:int -> dst:int -> unit
(** Undo {!cut_link} for that directed link. *)

val broadcast : 'm t -> src:int -> 'm -> unit
(** Send to every node, including [src] itself. *)

val backend : 'm t -> 'm Backend.net
(** The {!Backend.net} view protocols are wired onto
    ([Aso_core.Eq_aso.create_on], …). [trace] is {!Obs.Trace.noop}:
    there is no online observability on rt — completed runs are checked
    in batch. *)

val start : _ t -> unit
(** Spawn all node domains. Handlers must already be installed. *)

val stop : _ t -> unit
(** Post [Stop] everywhere and join every domain (crashed domains have
    already exited and just join). *)

val crash : _ t -> int -> unit
val is_crashed : _ t -> int -> bool

val restart : _ t -> int -> unit
(** Revive a crashed node with a fresh domain and an empty mailbox
    ({!Node.restart}); protocol volatile state must already be reset. *)

val post_work : 'm t -> int -> (unit -> unit) -> bool
(** Submit an operation thunk to run on node [i]'s domain; [false] if
    the node has crashed. *)
