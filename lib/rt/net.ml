type 'm t = {
  nodes : 'm Node.t array;
  metrics : Obs.Metrics.t;
  c_sent : Obs.Metrics.counter;
  c_delivered : Obs.Metrics.counter;
  c_dropped : Obs.Metrics.counter;
  c_broadcasts : Obs.Metrics.counter;
  t0 : int64;
  telem : Telem.t option;
  (* Per-node flight-recorder handles, precomputed so the send hot path
     does not allocate one per message. *)
  tnodes : Telem.node option array;
  causal : Obs.Vclock.recorder option;
  (* Link-level fault injection (tests only): [cut.(src * n + dst)]
     silently drops that directed link's messages, counted under
     [net.dropped]. Plain bool array — writes are rare test-side pokes
     and a momentarily stale read only shifts when the partition takes
     effect, never tears. *)
  cut : bool array;
}

let create ?(recorder = true) ?(causal = false) ?parking ~n () =
  if n <= 0 then invalid_arg "Rt.Net.create: n must be positive";
  let metrics = Obs.Metrics.create () in
  let t0 = Monotonic_clock.now () in
  let now () = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) *. 1e-9 in
  let telem = if recorder then Some (Telem.create ~n ~now ()) else None in
  let nodes = Array.init n (Node.create ?parking) in
  let tnodes =
    match telem with
    | Some tl -> Array.init n (fun i -> Some (Telem.node tl i))
    | None -> Array.make n None
  in
  (match telem with
  | Some _ -> Array.iteri (fun i nd -> Node.set_telem nd tnodes.(i)) nodes
  | None -> ());
  (* Retention-bounded: rt stamps hundreds of thousands of events per
     second, and the slice forensics only need the recent causal
     window — an unbounded log is a major-heap leak that costs real
     throughput in GC on long runs. *)
  let causal =
    if causal then Some (Obs.Vclock.recorder ~cap:16_384 ~n ()) else None
  in
  (* Receive side of the causal wiring: the delivery observer runs on
     the receiving node's own domain just before the handler — merge the
     piggy-backed stamp into the receiver's clock and pair the flow
     arrow on the receiver's ring (single-writer contract holds on both
     rings: sends are recorded by the sending domain, deliveries by the
     receiving one). *)
  (match causal with
  | Some vr ->
      Array.iteri
        (fun dst nd ->
          Node.set_on_deliver nd (fun ~src (m : Node.meta) ->
              Obs.Vclock.record_deliver vr ~dst ~src ~flow:m.flow
                ~stamp:m.stamp ~at:(now ()) ();
              match tnodes.(dst) with
              | Some tnd -> Telem.flow_recv tnd ~flow:m.flow
              | None -> ()))
        nodes
  | None -> ());
  {
    nodes;
    metrics;
    (* Same instrument names as the simulator's network, so bench and
       campaign aggregation treat both backends uniformly. *)
    c_sent = Obs.Metrics.counter metrics "net.sent";
    c_delivered = Obs.Metrics.counter metrics "net.delivered";
    c_dropped = Obs.Metrics.counter metrics "net.dropped";
    c_broadcasts = Obs.Metrics.counter metrics "net.broadcasts";
    t0;
    telem;
    tnodes;
    causal;
    cut = Array.make (n * n) false;
  }

let size t = Array.length t.nodes
let metrics t = t.metrics
let node t i = t.nodes.(i)
let telem t = t.telem
let recorder t = Option.map Telem.recorder t.telem
let causal t = t.causal

let now t = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.t0) *. 1e-9

let cut_link t ~src ~dst = t.cut.((src * size t) + dst) <- true
let heal_link t ~src ~dst = t.cut.((src * size t) + dst) <- false

let send t ~src ~dst msg =
  if not (Node.is_crashed t.nodes.(src)) then begin
    if t.cut.((src * size t) + dst) then Obs.Metrics.incr t.c_dropped
    else begin
      Obs.Metrics.incr t.c_sent;
      let meta =
        match t.causal with
        | None -> None
        | Some vr ->
            let flow, stamp =
              Obs.Vclock.record_send vr ~src ~dst ~at:(now t) ()
            in
            (match t.tnodes.(src) with
            | Some tnd -> Telem.flow_send tnd ~flow
            | None -> ());
            Some { Node.flow; stamp }
      in
      if Node.post t.nodes.(dst) (Node.Net { src; msg; meta }) then
        Obs.Metrics.incr t.c_delivered
      else begin
        Obs.Metrics.incr t.c_dropped;
        match (t.causal, meta) with
        | Some vr, Some m ->
            Obs.Vclock.record_drop vr ~dst ~src ~flow:m.flow ~at:(now t) ()
        | _ -> ()
      end
    end
  end

let broadcast t ~src msg =
  if not (Node.is_crashed t.nodes.(src)) then begin
    Obs.Metrics.incr t.c_broadcasts;
    for dst = 0 to size t - 1 do
      send t ~src ~dst msg
    done
  end

let backend t =
  {
    Backend.n = size t;
    backend_name = "rt";
    now = (fun () -> now t);
    send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    broadcast = (fun ~src msg -> broadcast t ~src msg);
    set_handler = (fun i h -> Node.set_handler t.nodes.(i) h);
    (* Message labels feed tracing and per-kind wire accounting, neither
       of which exists on rt (trace is noop). *)
    set_msg_label = (fun _ -> ());
    new_condition =
      (fun ~node ->
        let nd = t.nodes.(node) in
        {
          Backend.await = (fun pred -> Node.await nd pred);
          (* Handlers run on the node's own domain, interleaved with the
             awaiting operation at its pump points — after each handler
             the await loop re-checks its predicate anyway, so signal
             has nothing to do. *)
          signal = (fun () -> ());
        });
    trace = Obs.Trace.noop;
    metrics = t.metrics;
  }

let start t = Array.iter Node.start t.nodes

let stop t =
  Array.iter (fun nd -> ignore (Node.post nd Node.Stop : bool)) t.nodes;
  Array.iter Node.join t.nodes

let crash t i = Node.crash t.nodes.(i)
let restart t i = Node.restart t.nodes.(i)
let is_crashed t i = Node.is_crashed t.nodes.(i)
let post_work t i f = Node.post t.nodes.(i) (Node.Work f)
