type 'm t = {
  nodes : 'm Node.t array;
  metrics : Obs.Metrics.t;
  c_sent : Obs.Metrics.counter;
  c_delivered : Obs.Metrics.counter;
  c_dropped : Obs.Metrics.counter;
  c_broadcasts : Obs.Metrics.counter;
  t0 : int64;
  telem : Telem.t option;
}

let create ?(recorder = true) ?parking ~n () =
  if n <= 0 then invalid_arg "Rt.Net.create: n must be positive";
  let metrics = Obs.Metrics.create () in
  let t0 = Monotonic_clock.now () in
  let now () = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) *. 1e-9 in
  let telem = if recorder then Some (Telem.create ~n ~now ()) else None in
  let nodes = Array.init n (Node.create ?parking) in
  (match telem with
  | Some tl ->
      Array.iteri (fun i nd -> Node.set_telem nd (Some (Telem.node tl i))) nodes
  | None -> ());
  {
    nodes;
    metrics;
    (* Same instrument names as the simulator's network, so bench and
       campaign aggregation treat both backends uniformly. *)
    c_sent = Obs.Metrics.counter metrics "net.sent";
    c_delivered = Obs.Metrics.counter metrics "net.delivered";
    c_dropped = Obs.Metrics.counter metrics "net.dropped";
    c_broadcasts = Obs.Metrics.counter metrics "net.broadcasts";
    t0;
    telem;
  }

let size t = Array.length t.nodes
let metrics t = t.metrics
let node t i = t.nodes.(i)
let telem t = t.telem
let recorder t = Option.map Telem.recorder t.telem

let now t = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.t0) *. 1e-9

let send t ~src ~dst msg =
  if not (Node.is_crashed t.nodes.(src)) then begin
    Obs.Metrics.incr t.c_sent;
    if Node.post t.nodes.(dst) (Node.Net { src; msg }) then
      Obs.Metrics.incr t.c_delivered
    else Obs.Metrics.incr t.c_dropped
  end

let broadcast t ~src msg =
  if not (Node.is_crashed t.nodes.(src)) then begin
    Obs.Metrics.incr t.c_broadcasts;
    for dst = 0 to size t - 1 do
      send t ~src ~dst msg
    done
  end

let backend t =
  {
    Backend.n = size t;
    backend_name = "rt";
    now = (fun () -> now t);
    send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    broadcast = (fun ~src msg -> broadcast t ~src msg);
    set_handler = (fun i h -> Node.set_handler t.nodes.(i) h);
    (* Message labels feed tracing and per-kind wire accounting, neither
       of which exists on rt (trace is noop). *)
    set_msg_label = (fun _ -> ());
    new_condition =
      (fun ~node ->
        let nd = t.nodes.(node) in
        {
          Backend.await = (fun pred -> Node.await nd pred);
          (* Handlers run on the node's own domain, interleaved with the
             awaiting operation at its pump points — after each handler
             the await loop re-checks its predicate anyway, so signal
             has nothing to do. *)
          signal = (fun () -> ());
        });
    trace = Obs.Trace.noop;
    metrics = t.metrics;
  }

let start t = Array.iter Node.start t.nodes

let stop t =
  Array.iter (fun nd -> ignore (Node.post nd Node.Stop : bool)) t.nodes;
  Array.iter Node.join t.nodes

let crash t i = Node.crash t.nodes.(i)
let restart t i = Node.restart t.nodes.(i)
let is_crashed t i = Node.is_crashed t.nodes.(i)
let post_work t i f = Node.post t.nodes.(i) (Node.Work f)
