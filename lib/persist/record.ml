type 'v t =
  | Entry of { tag : int; writer : int; value : 'v }
  | Restart

let map f = function
  | Entry { tag; writer; value } -> Entry { tag; writer; value = f value }
  | Restart -> Restart

let pp pp_v ppf = function
  | Entry { tag; writer; value } ->
      Format.fprintf ppf "entry ts=(%d,%d) value=%a" tag writer pp_v value
  | Restart -> Format.fprintf ppf "restart"
