type 'v t = {
  append : 'v Record.t -> unit;
  read : unit -> 'v Record.t list;
  size : unit -> int;
  label : string;
}

let append t r = t.append r
let read t = t.read ()
let size t = t.size ()
let label t = t.label

(* ---- simulator store ------------------------------------------------- *)

type 'v mem = { store : 'v t; mutable log : 'v Record.t list (* newest first *) }

let mem () =
  let rec m =
    {
      store =
        {
          append = (fun r -> m.log <- r :: m.log);
          read = (fun () -> List.rev m.log);
          size = (fun () -> List.length m.log);
          label = "mem";
        };
      log = [];
    }
  in
  m

let mem_store m = m.store

(* The torn-write knob: drop the newest [k] records, as if the crash hit
   before they reached the disk. The write-ahead discipline means each
   lost record is a mint the rest of the system may already have seen —
   exactly the hazard the rejoin protocol's quorum pull plus mint fence
   must absorb. *)
let lose_suffix m k =
  let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
  m.log <- drop k m.log

(* ---- file store ------------------------------------------------------ *)

(* Replay errors surface as an empty prefix: an unreadable or headerless
   file restores nothing, which is the conservative reading (recover
   from scratch) rather than a crash of the recovering node. *)
let file path =
  let w = Log.create_writer path in
  let replay () =
    match Log.replay_file path with Ok r -> r.records | Error _ -> []
  in
  {
    append = (fun r -> Log.append w r);
    read = replay;
    size = (fun () -> List.length (replay ()));
    label = path;
  }
