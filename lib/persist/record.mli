(** One write-ahead-log record of lattice state.

    [Entry] is a value the node minted: its timestamp (tag, writer) and
    the value itself, appended {e before} the mint is broadcast — the
    write-ahead discipline that makes the log an upper bound on what the
    rest of the system may have seen from this node. [Restart] marks the
    start of an incarnation; counting them yields the recovery epoch. *)

type 'v t =
  | Entry of { tag : int; writer : int; value : 'v }
  | Restart

val map : ('a -> 'b) -> 'a t -> 'b t

val pp :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit
