(** The write-ahead log format: versioned magic header, then one framed
    record per line — [LEN CHECKSUM PAYLOAD\n], length-prefixed and
    FNV-1a-checksummed so a torn final write is detected on replay and
    exactly the longest valid prefix of records is recovered. *)

val magic : string
(** First line of every log file ("aso-wal 1"). *)

val frame : int Record.t -> string
(** The exact bytes one [append] writes for this record. *)

val checksum : string -> int
(** FNV-1a (32-bit) over a payload, as embedded in frames. *)

type tail =
  | Clean  (** every byte of the file parsed as a frame *)
  | Torn of { valid : int; dropped_bytes : int }
      (** parsing stopped at byte offset [valid]; the remaining
          [dropped_bytes] bytes (a truncated or corrupted final frame,
          or garbage behind one) were discarded *)

type replayed = { records : int Record.t list; tail : tail }

val replay_string : string -> (replayed, string) result
(** Replay log contents: [Error] if the magic header is missing (the
    bytes are not a log at all), otherwise the longest valid prefix of
    records plus the tail verdict. *)

val replay_file : string -> (replayed, string) result

type writer

val create_writer : string -> writer
(** Open (or create, stamping the header) a log file for appending. *)

val append : writer -> int Record.t -> unit
(** Failure-atomic append: one write of a complete frame, then flush. *)

val writer_path : writer -> string

val close_writer : writer -> unit
