(* Line-based framing in the spirit of lib/mc/replay.ml's text
   round-tripping, hardened for crash recovery: every record is
   length-prefixed and checksummed, so a write torn anywhere inside the
   final frame is detected on replay and the longest valid prefix is
   recovered. The whole file is plain text — a WAL from a crashed run
   can be read, diffed and truncated with ordinary tools. *)

let magic = "aso-wal 1"

(* ---- payloads -------------------------------------------------------- *)

let payload = function
  | Record.Entry { tag; writer; value } ->
      Printf.sprintf "E %d %d %d" tag writer value
  | Record.Restart -> "R"

let parse_payload s =
  match String.split_on_char ' ' s with
  | [ "E"; tag; writer; value ] -> (
      match
        (int_of_string_opt tag, int_of_string_opt writer,
         int_of_string_opt value)
      with
      | Some tag, Some writer, Some value ->
          Some (Record.Entry { tag; writer; value })
      | _ -> None)
  | [ "R" ] -> Some Record.Restart
  | _ -> None

(* ---- checksum -------------------------------------------------------- *)

(* FNV-1a, 32 bits: cheap, dependency-free, and plenty to catch the
   single-frame truncations and bit flips a torn append produces (this
   is corruption {e detection} for recovery, not an integrity MAC). *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

(* ---- framing --------------------------------------------------------- *)

(* [LEN CHECKSUM PAYLOAD\n] with LEN the byte length of PAYLOAD: the
   length prefix bounds the frame before the payload is trusted, the
   checksum rejects a frame whose bytes survived truncation by accident,
   and the trailing newline must be present for the frame to count —
   three independent ways a torn tail fails to parse. *)
let frame record =
  let p = payload record in
  Printf.sprintf "%d %08x %s\n" (String.length p) (checksum p) p

type tail = Clean | Torn of { valid : int; dropped_bytes : int }

type replayed = { records : int Record.t list; tail : tail }

(* Scan one frame starting at [pos]; [Ok (record, next_pos)] or [Error
   ()] if the remaining bytes do not form a complete, checksummed
   frame — the torn-tail case. *)
let parse_frame s pos =
  let len = String.length s in
  let digits_end field start =
    let rec go i =
      if i < len && s.[i] <> ' ' then go (i + 1)
      else if i > start && i < len then Ok i
      else Error field
    in
    go start
  in
  match digits_end `Len pos with
  | Error _ -> Error ()
  | Ok sp1 -> (
      match int_of_string_opt (String.sub s pos (sp1 - pos)) with
      | None -> Error ()
      | Some plen -> (
          match digits_end `Sum (sp1 + 1) with
          | Error _ -> Error ()
          | Ok sp2 -> (
              match
                int_of_string_opt ("0x" ^ String.sub s (sp1 + 1) (sp2 - sp1 - 1))
              with
              | None -> Error ()
              | Some sum ->
                  let body = sp2 + 1 in
                  if plen < 0 || body + plen >= len then Error ()
                  else if s.[body + plen] <> '\n' then Error ()
                  else
                    let p = String.sub s body plen in
                    if checksum p <> sum then Error ()
                    else (
                      match parse_payload p with
                      | None -> Error ()
                      | Some r -> Ok (r, body + plen + 1)))))

let replay_string s =
  let len = String.length s in
  let header = magic ^ "\n" in
  let hlen = String.length header in
  if len < hlen || String.sub s 0 hlen <> header then
    Error
      (Printf.sprintf "not a write-ahead log (missing %S header)" magic)
  else
    let rec go acc pos =
      if pos >= len then { records = List.rev acc; tail = Clean }
      else
        match parse_frame s pos with
        | Ok (r, next) -> go (r :: acc) next
        | Error () ->
            (* First unparsable frame: everything before it is the
               longest valid prefix; everything from here on is the torn
               tail (or garbage behind it — either way, not trusted). *)
            {
              records = List.rev acc;
              tail = Torn { valid = pos; dropped_bytes = len - pos };
            }
    in
    Ok (go [] hlen)

let replay_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      replay_string s

(* ---- appending ------------------------------------------------------- *)

type writer = { path : string; oc : out_channel }

let create_writer path =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644
      path
  in
  (* Fresh log: stamp the header. [pos_out] in append mode reports the
     end of the file, so 0 means the file did not exist (or was empty
     and therefore not a valid log anyway). *)
  if pos_out oc = 0 then begin
    output_string oc (magic ^ "\n");
    flush oc
  end;
  { path; oc }

(* One [output_string] of a fully formatted frame, then flush: the
   runtime hands the frame to the OS in a single write, so a crash of
   this process leaves either no trace of the record or a (possibly
   torn) tail that replay detects — never an interleaved half-frame in
   the middle of the log. *)
let append w record =
  output_string w.oc (frame record);
  flush w.oc

let writer_path w = w.path

let close_writer w = close_out w.oc
