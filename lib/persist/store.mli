(** A node's durable store, as the protocol layer sees it: append a
    record, read the whole surviving prefix back. Two implementations:
    an in-memory store for the simulator (it lives outside the node, so
    it survives [crash], with an injectable lost suffix to model torn
    writes) and a file-backed store over {!Log} for the rt backend. *)

type 'v t

val append : 'v t -> 'v Record.t -> unit
val read : 'v t -> 'v Record.t list
val size : 'v t -> int
val label : 'v t -> string

type 'v mem

val mem : unit -> 'v mem
val mem_store : 'v mem -> 'v t

val lose_suffix : 'v mem -> int -> unit
(** Drop the newest [k] records, modeling a crash whose last appends
    never became durable. *)

val file : string -> int t
(** File-backed store: opens (or creates) the log at this path for
    appending; [read] replays the longest valid prefix from disk. *)
