type msg = int Aso_core.Lattice_core.Msg.t

type client_op = Op_update of int | Op_scan

type op_result = R_update_done | R_scan of int option array

type frame =
  | Hello of { src : int; boot : int }
  | Welcome of { boot : int; rx_expected : int }
  | Data of { seq : int; msg : msg }
  | Ack of { upto : int }
  | Req of { rid : int; op : client_op }
  | Resp of { rid : int; t_inv : int; t_resp : int; result : op_result }

let version = 1

(* "AW" + version byte + u32 payload length + u32 checksum. *)
let header_len = 2 + 1 + 4 + 4

let max_payload = 16 * 1024 * 1024

type error =
  | Bad_magic
  | Bad_version of int
  | Oversize of int
  | Truncated
  | Bad_checksum
  | Bad_payload

let pp_error ppf = function
  | Bad_magic -> Format.fprintf ppf "bad magic (not an AW frame)"
  | Bad_version v -> Format.fprintf ppf "wire version %d (speak %d)" v version
  | Oversize n -> Format.fprintf ppf "payload length %d exceeds cap" n
  | Truncated -> Format.fprintf ppf "truncated frame"
  | Bad_checksum -> Format.fprintf ppf "checksum mismatch"
  | Bad_payload -> Format.fprintf ppf "unparsable payload"

(* Same FNV-1a 32 as the write-ahead log: corruption *detection* on a
   loopback/LAN path, not an integrity MAC. *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

(* ---- varints --------------------------------------------------------- *)

(* Zigzag + LEB128. [lsl]/[lsr] keep this total on the whole int range
   (including [min_int], whose zigzag image has the top bit set): the
   encoder loops on the logical shift, so any 63-bit pattern costs at
   most 9 bytes and round-trips exactly. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

let put_varint buf n =
  let v = ref (zigzag n) in
  let continue = ref true in
  while !continue do
    if !v land lnot 0x7f = 0 then begin
      Buffer.add_char buf (Char.chr !v);
      continue := false
    end
    else begin
      Buffer.add_char buf (Char.chr ((!v land 0x7f) lor 0x80));
      v := !v lsr 7
    end
  done

exception Fail

type parser_ = { s : string; mutable pos : int; limit : int }

let byte p =
  if p.pos >= p.limit then raise Fail;
  let c = Char.code p.s.[p.pos] in
  p.pos <- p.pos + 1;
  c

let varint p =
  let rec go acc shift count =
    if count > 9 then raise Fail;
    let b = byte p in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go acc (shift + 7) (count + 1)
  in
  unzigzag (go 0 0 1)

(* ---- payloads -------------------------------------------------------- *)

module Msg_ = Aso_core.Lattice_core.Msg

let put_msg buf (m : msg) =
  let v = put_varint buf in
  match m with
  | Msg_.Value { ts; value } ->
      Buffer.add_char buf '\000';
      v ts.Timestamp.tag;
      v ts.Timestamp.writer;
      v value
  | Msg_.Read_tag { req } ->
      Buffer.add_char buf '\001';
      v req
  | Msg_.Read_ack { req; tag } ->
      Buffer.add_char buf '\002';
      v req;
      v tag
  | Msg_.Write_tag { req; tag } ->
      Buffer.add_char buf '\003';
      v req;
      v tag
  | Msg_.Write_ack { req } ->
      Buffer.add_char buf '\004';
      v req
  | Msg_.Echo_tag { tag } ->
      Buffer.add_char buf '\005';
      v tag
  | Msg_.Good_la { tag } ->
      Buffer.add_char buf '\006';
      v tag
  | Msg_.Recover_pull { req } ->
      Buffer.add_char buf '\007';
      v req
  | Msg_.Recover_push { req; entries; max_tag } ->
      Buffer.add_char buf '\008';
      v req;
      v max_tag;
      v (List.length entries);
      List.iter
        (fun ((ts : Timestamp.t), value) ->
          v ts.tag;
          v ts.writer;
          v value)
        entries

let get_msg p : msg =
  match byte p with
  | 0 ->
      let tag = varint p in
      let writer = varint p in
      let value = varint p in
      Msg_.Value { ts = { Timestamp.tag; writer }; value }
  | 1 -> Msg_.Read_tag { req = varint p }
  | 2 ->
      let req = varint p in
      Msg_.Read_ack { req; tag = varint p }
  | 3 ->
      let req = varint p in
      Msg_.Write_tag { req; tag = varint p }
  | 4 -> Msg_.Write_ack { req = varint p }
  | 5 -> Msg_.Echo_tag { tag = varint p }
  | 6 -> Msg_.Good_la { tag = varint p }
  | 7 -> Msg_.Recover_pull { req = varint p }
  | 8 ->
      let req = varint p in
      let max_tag = varint p in
      let len = varint p in
      if len < 0 || len > max_payload then raise Fail;
      let entries =
        List.init len (fun _ ->
            let tag = varint p in
            let writer = varint p in
            let value = varint p in
            ({ Timestamp.tag; writer }, value))
      in
      Msg_.Recover_push { req; entries; max_tag }
  | _ -> raise Fail

let put_snap buf (snap : int option array) =
  put_varint buf (Array.length snap);
  Array.iter
    (fun cell ->
      match cell with
      | None -> Buffer.add_char buf '\000'
      | Some v ->
          Buffer.add_char buf '\001';
          put_varint buf v)
    snap

let get_snap p =
  let len = varint p in
  if len < 0 || len > max_payload then raise Fail;
  Array.init len (fun _ ->
      match byte p with
      | 0 -> None
      | 1 -> Some (varint p)
      | _ -> raise Fail)

let put_frame buf = function
  | Hello { src; boot } ->
      Buffer.add_char buf '\001';
      put_varint buf src;
      put_varint buf boot
  | Welcome { boot; rx_expected } ->
      Buffer.add_char buf '\002';
      put_varint buf boot;
      put_varint buf rx_expected
  | Data { seq; msg } ->
      Buffer.add_char buf '\003';
      put_varint buf seq;
      put_msg buf msg
  | Ack { upto } ->
      Buffer.add_char buf '\004';
      put_varint buf upto
  | Req { rid; op } -> (
      Buffer.add_char buf '\005';
      put_varint buf rid;
      match op with
      | Op_scan -> Buffer.add_char buf '\000'
      | Op_update v ->
          Buffer.add_char buf '\001';
          put_varint buf v)
  | Resp { rid; t_inv; t_resp; result } -> (
      Buffer.add_char buf '\006';
      put_varint buf rid;
      put_varint buf t_inv;
      put_varint buf t_resp;
      match result with
      | R_update_done -> Buffer.add_char buf '\000'
      | R_scan snap ->
          Buffer.add_char buf '\001';
          put_snap buf snap)

let get_frame p =
  match byte p with
  | 1 ->
      let src = varint p in
      Hello { src; boot = varint p }
  | 2 ->
      let boot = varint p in
      Welcome { boot; rx_expected = varint p }
  | 3 ->
      let seq = varint p in
      Data { seq; msg = get_msg p }
  | 4 -> Ack { upto = varint p }
  | 5 ->
      let rid = varint p in
      let op =
        match byte p with
        | 0 -> Op_scan
        | 1 -> Op_update (varint p)
        | _ -> raise Fail
      in
      Req { rid; op }
  | 6 ->
      let rid = varint p in
      let t_inv = varint p in
      let t_resp = varint p in
      let result =
        match byte p with
        | 0 -> R_update_done
        | 1 -> R_scan (get_snap p)
        | _ -> raise Fail
      in
      Resp { rid; t_inv; t_resp; result }
  | _ -> raise Fail

(* ---- framing --------------------------------------------------------- *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let encode frame =
  let payload = Buffer.create 64 in
  put_frame payload frame;
  let p = Buffer.contents payload in
  let out = Buffer.create (header_len + String.length p) in
  Buffer.add_string out "AW";
  Buffer.add_char out (Char.chr version);
  put_u32 out (String.length p);
  put_u32 out (checksum p);
  Buffer.add_string out p;
  Buffer.contents out

let decode s ~pos =
  let len = String.length s in
  if pos + header_len > len then
    (* Not even a whole header: only reject what we can already see. *)
    if pos < len && s.[pos] <> 'A' then Error Bad_magic
    else if pos + 1 < len && s.[pos + 1] <> 'W' then Error Bad_magic
    else Error Truncated
  else if s.[pos] <> 'A' || s.[pos + 1] <> 'W' then Error Bad_magic
  else if Char.code s.[pos + 2] <> version then
    Error (Bad_version (Char.code s.[pos + 2]))
  else
    let plen = get_u32 s (pos + 3) in
    if plen < 0 || plen > max_payload then Error (Oversize plen)
    else if pos + header_len + plen > len then Error Truncated
    else
      let sum = get_u32 s (pos + 7) in
      let body = pos + header_len in
      let payload = String.sub s body plen in
      if checksum payload <> sum then Error Bad_checksum
      else
        let p = { s = payload; pos = 0; limit = plen } in
        match get_frame p with
        | exception Fail -> Error Bad_payload
        | frame ->
            (* The payload must be consumed exactly: trailing garbage
               behind a parsable prefix is still a corrupt frame. *)
            if p.pos <> p.limit then Error Bad_payload
            else Ok (frame, body + plen)
