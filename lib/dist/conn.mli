(** Socket plumbing under the dist backend: endpoints, listeners,
    dialing with exponential backoff, and framed reads/writes over a
    file descriptor.

    Endpoints are unix-domain sockets by default (no ports to collide
    in CI; the supervisor puts them in its run directory) with TCP as
    the off-box option; both print/parse as ["unix:PATH"] /
    ["tcp:HOST:PORT"] so one [--peers] flag describes a deployment. *)

type endpoint = Unix_ep of string | Tcp_ep of string * int

val endpoint_to_string : endpoint -> string
val endpoint_of_string : string -> (endpoint, string) result
val pp_endpoint : Format.formatter -> endpoint -> unit

val listen : endpoint -> Unix.file_descr
(** Bind + listen (unlinking a stale unix socket file first).
    @raise Unix.Unix_error *)

val connect : endpoint -> (Unix.file_descr, exn) result
(** One connection attempt. *)

val dial :
  ?backoff0:float ->
  ?backoff_max:float ->
  stop:(unit -> bool) ->
  endpoint ->
  Unix.file_descr option
(** Retry {!connect} with exponential backoff (default 10 ms doubling
    to 500 ms) until it succeeds or [stop ()] turns true — the
    reconnect loop's engine. [None] only when stopped. *)

val write_frame : Unix.file_descr -> Wire.frame -> bool
(** Encode and write the whole frame (looping over short writes).
    [false] on any write error — the connection is dead. *)

type reader
(** Buffered frame reader over one fd. Single-consumer. *)

val reader : Unix.file_descr -> reader

val read_frame : reader -> (Wire.frame, [ `Eof | `Err of Wire.error ]) result
(** Block until one whole frame is buffered and decode it. [`Eof] on a
    clean close or a read error; [`Err] on undecodable bytes (the
    stream is unrecoverable after either — close it). *)
