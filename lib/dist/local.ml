type t = {
  nodes : Node_main.t array;
  threads : Thread.t array;
  eps : Conn.endpoint array;
}

let start ?chaos ?(wal = false) ~algo ~n ~f ~dir () =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let eps =
    Array.init n (fun i ->
        Conn.Unix_ep (Filename.concat dir (Printf.sprintf "node-%d.sock" i)))
  in
  let nodes =
    Array.init n (fun i ->
        Node_main.start
          {
            Node_main.me = i;
            eps;
            f;
            algo;
            wal =
              (if wal then
                 Some (Filename.concat dir (Printf.sprintf "node-%d.wal" i))
               else None);
            recover = false;
            chaos;
          })
  in
  let threads = Array.map (fun nd -> Thread.create Node_main.run nd) nodes in
  { nodes; threads; eps }

let endpoints t = t.eps
let net t i = Node_main.net t.nodes.(i)

let stop t =
  Array.iter Node_main.request_stop t.nodes;
  Array.iter Thread.join t.threads;
  Array.iter Node_main.shutdown t.nodes
