(** Socket-layer fault injection, mirroring the simulator's
    {!Sim.Link} knobs (drop / duplicate / delay / partition) so the
    chaos campaigns that run against virtual links can run against real
    processes.

    Faults apply on the {e sender} side to [Data] frames only — never
    to the handshake, and not to acks (dropping or delaying the data is
    already observationally equivalent for the protocol, and a lost ack
    just makes the next retransmission carry it). A dropped frame stays
    on the retransmission queue, so chaos exercises exactly the
    recovery machinery it is supposed to: at-least-once delivery with
    receiver-side dedup.

    Every verdict comes from one seeded PRNG behind a mutex, so a chaos
    run is reproducible per process modulo thread scheduling — same
    spirit as the sim, which it cannot match exactly (real time is not
    virtual time). *)

type t = {
  drop : float;  (** P(frame silently not written) *)
  dup : float;  (** P(frame written twice) *)
  delay_prob : float;  (** P(frame held back before writing) *)
  delay_min : float;  (** seconds, uniform in [delay_min, delay_max] *)
  delay_max : float;
  cut : (int list * float * float) option;
      (** [(peers, from, until)]: all data to [peers] is dropped while
          [now] (seconds since the net started) is inside the window —
          a timed partition *)
  seed : int;
}

val none : t
val is_none : t -> bool

val is_active : t -> bool
(** Some knob is turned: worth paying for a verdict per frame. *)

type state

val make : t -> state

type verdict = Pass | Drop | Duplicate | Delay of float

val judge : state -> now:float -> dst:int -> verdict
(** Roll the dice for one frame to [dst]. Thread-safe. *)
