(** The dist backend's wire format: versioned, length-prefixed,
    checksummed binary frames.

    Same round-tripping discipline as the write-ahead log
    ({!Persist.Log}): a fixed header bounds the frame before any payload
    byte is trusted, an FNV-1a checksum rejects bytes that survived
    truncation or a bit flip by accident, and the payload parser must
    consume the frame exactly — three independent ways a torn or
    corrupted frame fails to decode. Binary rather than text because
    frames cross a socket on the latency path, not a WAL meant for
    [grep].

    Layout (all multi-byte integers little-endian):

    {v
    "AW"  version:u8  payload_len:u32  fnv1a(payload):u32  payload
    v}

    The first payload byte is the frame kind; every integer after it is
    a zigzag-encoded LEB128 varint, so negative values (timestamps never
    are, but protocol values may be) cost no special casing.

    The codec is pure — encode to a [string], decode from a [string] at
    an offset — so the fuzz suite can round-trip and mutilate frames
    without a socket in sight. {!Conn} layers the fd I/O on top. *)

type msg = int Aso_core.Lattice_core.Msg.t

(** A client request against one node: the supervisor's closed-loop
    clients speak this (and only this) to the node they are pinned
    to. *)
type client_op = Op_update of int | Op_scan

type op_result = R_update_done | R_scan of int option array

type frame =
  | Hello of { src : int; boot : int }
      (** dialer's opening word on a peer connection: who I am and
          which incarnation (the [boot] id changes on every process
          start, so the acceptor can tell a reconnect from a
          restart) *)
  | Welcome of { boot : int; rx_expected : int }
      (** acceptor's reply: its own incarnation and the next in-order
          sequence number it expects from this dialer — the dialer
          drops already-delivered frames and retransmits the rest *)
  | Data of { seq : int; msg : msg }  (** one protocol message *)
  | Ack of { upto : int }
      (** cumulative: every [seq < upto] is delivered *)
  | Req of { rid : int; op : client_op }
  | Resp of { rid : int; t_inv : int; t_resp : int; result : op_result }
      (** [t_inv]/[t_resp] are the node's [CLOCK_MONOTONIC] nanoseconds
          at the protocol execution boundaries — comparable across
          processes on one machine, which is what lets the supervisor
          merge per-node stamps into one checkable history *)

val version : int
val header_len : int

val max_payload : int
(** Sanity cap on the length field (16 MiB): a corrupted length must
    not make a reader try to buffer gigabytes before the checksum gets
    a chance to reject the frame. *)

type error =
  | Bad_magic
  | Bad_version of int
  | Oversize of int
  | Truncated  (** not enough bytes for a whole frame (streaming: wait) *)
  | Bad_checksum
  | Bad_payload

val pp_error : Format.formatter -> error -> unit

val encode : frame -> string
(** Header plus payload, ready for a single write. *)

val decode : string -> pos:int -> (frame * int, error) result
(** Decode one frame starting at [pos]; on success also return the
    offset just past it. [Error Truncated] means the bytes so far are a
    valid proper prefix — a streaming reader should wait for more. *)

val checksum : string -> int
(** FNV-1a 32 (exposed for the corruption tests). *)
