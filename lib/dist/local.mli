(** An in-process dist cluster: every node is a {!Node_main} instance
    on its own thread, talking over real sockets exactly like separate
    processes would. Tests and benches use this to exercise the whole
    wire / transport / reconnect stack without forking — forking is
    [bin/aso_demo dist-serve]'s job. *)

type t

val start :
  ?chaos:Chaos.t ->
  ?wal:bool ->
  algo:Rt.Service.algo ->
  n:int ->
  f:int ->
  dir:string ->
  unit ->
  t
(** Unix-socket endpoints (and WALs, when [wal]) under [dir], which is
    created if needed. Returns once every node is listening. *)

val endpoints : t -> Conn.endpoint array

val net : t -> int -> Net.t
(** Node [i]'s network stack (metrics live there). *)

val stop : t -> unit
(** Graceful: stop each node's loop, join its thread, close sockets. *)
