type op_kind = K_update of int | K_scan of int option array

type op_rec = {
  o_node : int;
  o_kind : op_kind;
  o_inv : int;
  o_resp : int;
  o_ok : bool;
}

(* ------------------------------------------------------------------ *)
(* Client load.                                                        *)

let drive_clients ~eps ~clients ~secs ?(scan_fraction = 0.3) ?(seed = 0) () =
  let n = Array.length eps in
  let results = Array.make clients [] in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            let rng = Random.State.make [| seed; c; 0x5eed |] in
            let recs = ref [] in
            let k = ref 0 in
            let home = ref (c mod n) in
            let conn = ref (Client.connect eps.(!home)) in
            let t_end = Net.now_ns () + int_of_float (secs *. 1e9) in
            while Net.now_ns () < t_end do
              match !conn with
              | None ->
                  (* Fail over to the next node; it may itself be dead,
                     so keep rotating. *)
                  home := (!home + 1) mod n;
                  Thread.delay 0.05;
                  conn := Client.connect ~attempts:5 eps.(!home)
              | Some cl ->
                  let abort kind t0 =
                    recs :=
                      {
                        o_node = !home;
                        o_kind = kind;
                        o_inv = t0;
                        o_resp = Net.now_ns ();
                        o_ok = false;
                      }
                      :: !recs;
                    Client.close cl;
                    conn := None
                  in
                  if Random.State.float rng 1.0 < scan_fraction then begin
                    let t0 = Net.now_ns () in
                    match Client.scan cl with
                    | Ok (snap, t_inv, t_resp) ->
                        recs :=
                          {
                            o_node = !home;
                            o_kind = K_scan snap;
                            o_inv = t_inv;
                            o_resp = t_resp;
                            o_ok = true;
                          }
                          :: !recs
                    | Error () -> abort (K_scan [||]) t0
                  end
                  else begin
                    incr k;
                    let v = ((c + 1) * 1_000_000) + !k in
                    let t0 = Net.now_ns () in
                    match Client.update cl v with
                    | Ok (t_inv, t_resp) ->
                        recs :=
                          {
                            o_node = !home;
                            o_kind = K_update v;
                            o_inv = t_inv;
                            o_resp = t_resp;
                            o_ok = true;
                          }
                          :: !recs
                    | Error () -> abort (K_update v) t0
                  end
            done;
            (match !conn with Some cl -> Client.close cl | None -> ());
            results.(c) <- !recs)
          ())
  in
  List.iter Thread.join threads;
  List.concat (Array.to_list results)

(* ------------------------------------------------------------------ *)
(* History merge.                                                      *)

let merge_history recs =
  let h = Proto.History.create () in
  if recs = [] then h
  else begin
    (* Aborted ops only have client-side stamps, whose intervals can
       overlap the node's serialized executions (two clients of one
       dying node abort together). Re-anchor each abort just after the
       node's last response that precedes the client-observed failure:
       never later than the op's true execution slot (see the .mli
       argument), and chained so the node stays a sequential process. *)
    let anchored =
      List.map
        (fun r ->
          if r.o_ok then r
          else
            let anchor =
              List.fold_left
                (fun acc c ->
                  if c.o_ok && c.o_node = r.o_node && c.o_resp < r.o_resp
                  then max acc c.o_resp
                  else acc)
                (r.o_inv - 1_000) recs
            in
            { r with o_inv = anchor; o_resp = r.o_resp })
        recs
    in
    (* Chain same-node aborts 100 ns apart inside the death window (the
       node is dead until recovery, seconds away — the window is wide). *)
    let cursors = Hashtbl.create 8 in
    let anchored =
      List.map
        (fun r ->
          if r.o_ok then r
          else begin
            let cur =
              Option.value (Hashtbl.find_opt cursors r.o_node) ~default:min_int
            in
            let inv = max r.o_inv cur + 100 in
            Hashtbl.replace cursors r.o_node (inv + 100);
            { r with o_inv = inv; o_resp = inv + 100 }
          end)
        (List.sort (fun a b -> compare (a.o_resp, a.o_inv) (b.o_resp, b.o_inv))
           anchored)
    in
    let arr = Array.of_list anchored in
    (* Two events per record; at an equal stamp, invocations sort before
       responses (phase 0 < 1) — the conservative order. *)
    let evs = ref [] in
    Array.iteri
      (fun i r -> evs := (r.o_inv, 0, i) :: (r.o_resp, 1, i) :: !evs)
      arr;
    let evs = List.sort compare !evs in
    let t0 = match evs with (t, _, _) :: _ -> t | [] -> 0 in
    let ops = Array.make (Array.length arr) None in
    List.iter
      (fun (t, phase, i) ->
        let now = float_of_int (t - t0) *. 1e-9 in
        let r = arr.(i) in
        if phase = 0 then
          ops.(i) <-
            Some
              (match r.o_kind with
              | K_update v ->
                  Proto.History.begin_update h ~now ~node:r.o_node ~value:v
              | K_scan _ -> Proto.History.begin_scan h ~now ~node:r.o_node)
        else
          match ops.(i) with
          | None -> assert false
          | Some op ->
              if not r.o_ok then Proto.History.abort h ~now op
              else (
                match r.o_kind with
                | K_update _ -> Proto.History.finish_update h ~now op
                | K_scan snap -> Proto.History.finish_scan h ~now op ~snap))
      evs;
    h
  end

(* ------------------------------------------------------------------ *)
(* Process mode.                                                       *)

type exit_status = Clean | Exited of int | Signaled of int

type node_exit = { x_node : int; x_status : exit_status; x_restarted : bool }

type recovery = { rec_node : int; rec_ready_after : float }

type report = {
  history : Proto.History.t;
  ops_total : int;
  ops_aborted : int;
  duration : float;
  ops_per_sec : float;
  update_lat : Obs.Hdr.dist;
  scan_lat : Obs.Hdr.dist;
  killed : int list;
  recoveries : recovery list;
  exits : node_exit list;
  retransmits : int;
}

type config = {
  algo : Rt.Service.algo;
  nodes : int;
  f : int;
  clients : int;
  secs : float;
  kill : int;
  dir : string;
  tcp_base : int option;
  scan_fraction : float;
  seed : int;
  chaos : Chaos.t option;
  worker_argv : string array;
}

let endpoints cfg =
  Array.init cfg.nodes (fun i ->
      match cfg.tcp_base with
      | Some base -> Conn.Tcp_ep ("127.0.0.1", base + i)
      | None ->
          Conn.Unix_ep (Filename.concat cfg.dir (Printf.sprintf "node-%d.sock" i)))

let chaos_flags = function
  | None -> []
  | Some (c : Chaos.t) ->
      List.concat
        [
          (if c.drop > 0. then [ "--chaos-drop"; string_of_float c.drop ]
           else []);
          (if c.dup > 0. then [ "--chaos-dup"; string_of_float c.dup ] else []);
          (if c.delay_prob > 0. then
             [
               "--chaos-delay-prob";
               string_of_float c.delay_prob;
               "--chaos-delay-ms";
               Printf.sprintf "%g:%g" (c.delay_min *. 1e3) (c.delay_max *. 1e3);
             ]
           else []);
          [ "--chaos-seed"; string_of_int c.seed ];
        ]

let spawn_node cfg eps ~recover i =
  let wal = Filename.concat cfg.dir (Printf.sprintf "node-%d.wal" i) in
  let log = Filename.concat cfg.dir (Printf.sprintf "node-%d.log" i) in
  let peers =
    String.concat ","
      (Array.to_list (Array.map Conn.endpoint_to_string eps))
  in
  let argv =
    Array.append cfg.worker_argv
      (Array.of_list
         ([
            Rt.Service.algo_name cfg.algo;
            "--me";
            string_of_int i;
            "--peers";
            peers;
            "--faults";
            string_of_int cfg.f;
            "--wal";
            wal;
          ]
         @ (if recover then [ "--recover" ] else [])
         @ chaos_flags cfg.chaos))
  in
  let out =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let pid = Unix.create_process argv.(0) argv Unix.stdin out out in
  Unix.close out;
  pid

let wait_reap ?(grace = 5.0) pid =
  (* Poll-wait so a wedged worker cannot wedge the supervisor: after
     [grace] seconds escalate to SIGKILL. *)
  let rec go elapsed =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if elapsed >= grace then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          let _, st = Unix.waitpid [] pid in
          st
        end
        else begin
          Thread.delay 0.05;
          go (elapsed +. 0.05)
        end
    | _, st -> st
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
  in
  go 0.

let status_of = function
  | Unix.WEXITED 0 -> Clean
  | Unix.WEXITED c -> Exited c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Signaled s

let run cfg =
  if cfg.kill > cfg.f then
    invalid_arg "Supervisor.run: kill must be <= f (the design bound)";
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let eps = endpoints cfg in
  let pids = Array.init cfg.nodes (fun i -> spawn_node cfg eps ~recover:false i) in
  let restarted = Array.make cfg.nodes false in
  let exits = ref [] in
  (* Kill the highest node ids: client c starts at node c mod n, so low
     ids keep their load and the probe exercises failover. *)
  let victims =
    List.init cfg.kill (fun j -> cfg.nodes - 1 - j) |> List.filter (fun i -> i >= 0)
  in
  let recoveries_mu = Mutex.create () in
  let recoveries = ref [] in
  let extra_recs = ref [] in
  let t_start = Net.now_ns () in
  let killer =
    Thread.create
      (fun () ->
        if cfg.kill > 0 then begin
          Thread.delay (cfg.secs *. 0.5);
          List.iter
            (fun i ->
              (try Unix.kill pids.(i) Sys.sigkill with Unix.Unix_error _ -> ());
              let st = wait_reap pids.(i) in
              exits :=
                { x_node = i; x_status = status_of st; x_restarted = true }
                :: !exits)
            victims;
          Thread.delay (cfg.secs *. 0.25);
          List.iter
            (fun i ->
              let t_respawn = Net.now_ns () in
              pids.(i) <- spawn_node cfg eps ~recover:true i;
              restarted.(i) <- true;
              (* Probe until the rejoined node serves an operation again;
                 the probe ops join the merged history so the checker
                 covers the recovered incarnation's responses. *)
              let rec probe () =
                if Net.now_ns () - t_respawn < 30_000_000_000 then
                  match Client.connect ~attempts:10 eps.(i) with
                  | None ->
                      Thread.delay 0.1;
                      probe ()
                  | Some cl -> (
                      let r = Client.scan cl in
                      Client.close cl;
                      match r with
                      | Ok (snap, t_inv, t_resp) ->
                          Mutex.lock recoveries_mu;
                          extra_recs :=
                            {
                              o_node = i;
                              o_kind = K_scan snap;
                              o_inv = t_inv;
                              o_resp = t_resp;
                              o_ok = true;
                            }
                            :: !extra_recs;
                          recoveries :=
                            {
                              rec_node = i;
                              rec_ready_after =
                                float_of_int (Net.now_ns () - t_respawn)
                                *. 1e-9;
                            }
                            :: !recoveries;
                          Mutex.unlock recoveries_mu
                      | Error () ->
                          Thread.delay 0.1;
                          probe ())
              in
              probe ())
            victims
        end)
      ()
  in
  let recs =
    drive_clients ~eps ~clients:cfg.clients ~secs:cfg.secs
      ~scan_fraction:cfg.scan_fraction ~seed:cfg.seed ()
  in
  Thread.join killer;
  let duration = float_of_int (Net.now_ns () - t_start) *. 1e-9 in
  (* Clients are done and joined, so the nodes are idle: SIGTERM is a
     clean shutdown and anything else is a bug worth reporting. *)
  Thread.delay 0.1;
  Array.iteri
    (fun i pid ->
      ignore i;
      try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    pids;
  Array.iteri
    (fun i pid ->
      let st = wait_reap pid in
      exits :=
        { x_node = i; x_status = status_of st; x_restarted = restarted.(i) }
        :: !exits)
    pids;
  let recs = recs @ !extra_recs in
  let history = merge_history recs in
  let update_h = Obs.Hdr.create () and scan_h = Obs.Hdr.create () in
  let aborted = ref 0 in
  List.iter
    (fun r ->
      if not r.o_ok then incr aborted
      else
        let dt = float_of_int (r.o_resp - r.o_inv) *. 1e-9 in
        match r.o_kind with
        | K_update _ -> Obs.Hdr.observe update_h dt
        | K_scan _ -> Obs.Hdr.observe scan_h dt)
    recs;
  let total = List.length recs in
  {
    history;
    ops_total = total;
    ops_aborted = !aborted;
    duration;
    ops_per_sec =
      (if duration > 0. then float_of_int (total - !aborted) /. duration
       else 0.);
    update_lat = Obs.Hdr.snapshot update_h;
    scan_lat = Obs.Hdr.snapshot scan_h;
    killed = victims;
    recoveries = List.rev !recoveries;
    exits = List.rev !exits;
    retransmits = -1;
  }

let pp_status ppf = function
  | Clean -> Format.pp_print_string ppf "clean exit"
  | Exited c -> Format.fprintf ppf "exit %d" c
  | Signaled s ->
      (* [s] is OCaml's internal signal numbering, meaningless to a
         shell user — name the ones the supervisor actually sends. *)
      if s = Sys.sigkill then Format.pp_print_string ppf "killed by SIGKILL"
      else if s = Sys.sigterm then
        Format.pp_print_string ppf "killed by SIGTERM"
      else Format.fprintf ppf "killed by signal %d (OCaml numbering)" s

let pp_quantile ppf (d, q) =
  match Obs.Hdr.dist_quantile d q with
  | Some v -> Format.fprintf ppf "%.2f ms" (v *. 1e3)
  | None -> Format.pp_print_string ppf "-"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>ops        : %d (%d aborted)@," r.ops_total
    r.ops_aborted;
  Format.fprintf ppf "duration   : %.2f s@," r.duration;
  Format.fprintf ppf "throughput : %.0f ops/s@," r.ops_per_sec;
  Format.fprintf ppf "update lat : p50 %a  p99 %a@," pp_quantile
    (r.update_lat, 0.5) pp_quantile (r.update_lat, 0.99);
  Format.fprintf ppf "scan lat   : p50 %a  p99 %a@," pp_quantile
    (r.scan_lat, 0.5) pp_quantile (r.scan_lat, 0.99);
  (match r.killed with
  | [] -> ()
  | ks ->
      Format.fprintf ppf "killed     : node %s (SIGKILL mid-run)@,"
        (String.concat ", " (List.map string_of_int ks)));
  List.iter
    (fun rc ->
      Format.fprintf ppf "recovered  : node %d served again %.2f s after respawn@,"
        rc.rec_node rc.rec_ready_after)
    r.recoveries;
  List.iter
    (fun x ->
      Format.fprintf ppf "node %d     : %a%s@," x.x_node pp_status x.x_status
        (if x.x_restarted then " [was killed and restarted]" else ""))
    (List.sort compare r.exits);
  Format.fprintf ppf "@]"
