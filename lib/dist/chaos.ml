type t = {
  drop : float;
  dup : float;
  delay_prob : float;
  delay_min : float;
  delay_max : float;
  cut : (int list * float * float) option;
  seed : int;
}

let none =
  {
    drop = 0.;
    dup = 0.;
    delay_prob = 0.;
    delay_min = 0.;
    delay_max = 0.;
    cut = None;
    seed = 1;
  }

let is_none t = t = none

let is_active t =
  t.drop > 0. || t.dup > 0. || t.delay_prob > 0. || t.cut <> None

type state = { spec : t; rng : Random.State.t; mu : Mutex.t }

let make spec = { spec; rng = Random.State.make [| spec.seed |]; mu = Mutex.create () }

type verdict = Pass | Drop | Duplicate | Delay of float

let judge st ~now ~dst =
  let s = st.spec in
  let in_cut =
    match s.cut with
    | Some (peers, from_, until) ->
        now >= from_ && now < until && List.mem dst peers
    | None -> false
  in
  if in_cut then Drop
  else begin
    Mutex.lock st.mu;
    let roll () = Random.State.float st.rng 1.0 in
    let v =
      if s.drop > 0. && roll () < s.drop then Drop
      else if s.dup > 0. && roll () < s.dup then Duplicate
      else if s.delay_prob > 0. && roll () < s.delay_prob then
        Delay (s.delay_min +. Random.State.float st.rng
                 (Float.max 0. (s.delay_max -. s.delay_min)))
      else Pass
    in
    Mutex.unlock st.mu;
    v
  end
