(** The dist backend: one OS process per protocol node, a full mesh of
    stream sockets between them, satisfying the same {!Backend.net}
    surface as the simulator and the domains runtime — so
    [Lattice_core]/[Eq_aso]/[Sso] run on it unmodified via
    [create_on].

    One [Net.t] {e is} one node (unlike [Rt.Net], which owns all [n]
    domains): node [me] listens on its own endpoint and dials every
    peer. Each directed channel (me, dst) rides me's outbound
    connection to dst as [Data] frames; the acceptor acks cumulatively
    on the same socket, so a channel's ack path dies exactly when its
    data path does. {!Transport} gives each channel reliable-FIFO
    delivery across drops, reconnects and peer restarts; the handshake
    ([Hello]/[Welcome] with boot incarnation ids) tells a plain
    reconnect apart from a peer that came back as a new process.

    Threading: the caller's thread runs the {!Rt.Node} mailbox loop
    ({!run}) — handlers and operations interleave only at [await]
    pump points, the execution contract every backend honours. Around
    it: an accept thread, one reader thread per live connection, one
    dialer/writer thread per peer, a retransmission timer, and (under
    chaos) a delayer. All of them touch protocol state only by posting
    mailbox items. *)

type msg = Wire.msg

type t

val create :
  ?chaos:Chaos.t ->
  ?rto0:float ->
  ?rto_max:float ->
  me:int ->
  eps:Conn.endpoint array ->
  unit ->
  t
(** Build node [me] of the deployment described by [eps] (one endpoint
    per node, everyone agreeing on the array). Nothing listens or
    dials until {!start}. *)

val me : t -> int
val size : t -> int
val boot : t -> int
val metrics : t -> Obs.Metrics.t

val backend : t -> msg Backend.net
(** The engine surface ([backend_name = "dist"]). Only node [me]'s
    condition may be awaited — the other nodes live in other
    processes. *)

val now_ns : unit -> int
(** Absolute [CLOCK_MONOTONIC] nanoseconds — system-wide on Linux, so
    stamps from different node processes on one machine are mutually
    comparable. This is what [Resp] frames carry and what the
    supervisor merges into one history. *)

val start : t -> unit
(** Bind the listener, start dialing peers, start the retransmission
    timer. Call after the protocol installed its handler. *)

val run : t -> unit
(** The node's main loop (blocking): deliver messages, run client work,
    return once {!request_stop} was called. *)

val post_work : t -> (unit -> unit) -> unit
(** Enqueue a thunk to run in protocol context (serialized with every
    other operation and handler). *)

val set_client_handler :
  t -> (Wire.frame -> reply:(Wire.frame -> unit) -> unit) -> unit
(** Install the handler for client connections (first frame is a
    [Req]). Runs on the connection's reader thread; [reply] is safe
    from any thread. Install before {!start}. *)

val request_stop : t -> unit
(** Make {!run} return after the current mailbox item. Safe from a
    signal handler's deferred context or any thread. *)

val stop : t -> unit
(** Tear the sockets and helper threads down. Call after {!run}
    returned. *)
