(** A blocking client connection to one dist node, speaking
    [Req]/[Resp] frames. One outstanding operation at a time (the
    load drivers run one client per thread).

    Results carry the node-side invocation/response stamps in absolute
    [CLOCK_MONOTONIC] nanoseconds — what the supervisor merges across
    processes into one linearizability-checkable history. *)

type t

val connect :
  ?attempts:int -> ?rcv_timeout:float -> Conn.endpoint -> t option
(** Try [attempts] (default 50) times, 20 ms apart — nodes take a
    moment to bind their listeners. [rcv_timeout] (default 30 s) bounds
    every response wait: a node that dies mid-operation can leave the
    stream open but silent. *)

val update : t -> int -> (int * int, unit) result
(** [Ok (t_inv, t_resp)] on completion; [Error ()] means the connection
    is unusable (reconnect to a different node and count the op as
    potentially-applied — an abort in history terms). *)

val scan : t -> (int option array * int * int, unit) result
(** [Ok (snap, t_inv, t_resp)]. *)

val close : t -> unit
