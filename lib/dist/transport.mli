(** Reliable-FIFO channel state machines for the socket backend — the
    same sequence-number / cumulative-ack / retransmit-with-backoff
    logic as {!Sim.Transport}, re-shaped for threads: where the
    simulator owns timers and a lossy link, these are pure-ish state
    machines the caller drives under its own lock, with real time
    passed in. One [tx] per outgoing peer, one [rx] per incoming peer.

    The extra twist over the simulator is {e reconnection}: a TCP/unix
    stream can die and come back, and either end can be a whole new
    process. {!tx_reconnect} re-synchronizes the sender after a
    handshake — trimming what the peer already delivered and, when the
    peer is a fresh incarnation (its volatile [rx] state is gone),
    renumbering the survivors from zero. Between stable incarnations
    this gives exactly-once in-order delivery; across a crash it
    degrades to at-least-once, which the protocol absorbs (collectors
    dedup by sender, the kernel is idempotent, and the lost messages a
    dead incarnation had acked are recovered by the quorum state
    pull). *)

type 'm tx

val tx : ?rto0:float -> ?rto_max:float -> unit -> 'm tx
(** Defaults: 0.1 s initial retransmission timeout, doubling to 2 s —
    loopback/LAN numbers. *)

val tx_send : 'm tx -> now:float -> 'm -> int
(** Assign the next sequence number, queue as unacked, arm the timer if
    idle. Returns the sequence number to put on the wire. *)

val tx_ack : 'm tx -> now:float -> upto:int -> bool
(** Cumulative ack: drop every unacked [seq < upto]. True if anything
    was dropped (progress — the RTO resets). *)

val tx_due : 'm tx -> now:float -> (int * 'm) list
(** Frames to retransmit now ([[]] if the timer has not expired or
    nothing is unacked). A non-empty result backs the RTO off (doubling
    up to the cap) and re-arms. *)

val tx_reconnect :
  'm tx -> now:float -> peer_rebooted:bool -> rx_expected:int ->
  (int * 'm) list
(** Post-handshake resync: drop unacked frames the peer already
    delivered ([seq < rx_expected]); if [peer_rebooted], renumber the
    survivors from 0 (the new incarnation expects a fresh channel).
    Returns every surviving frame for immediate retransmission, RTO
    reset and re-armed. *)

val tx_unacked : 'm tx -> int
val tx_next_seq : 'm tx -> int

type 'm rx

val rx : unit -> 'm rx

val rx_data : 'm rx -> seq:int -> 'm -> 'm list
(** One incoming data frame: returns the messages that just became
    deliverable, in order (empty on duplicates and gaps). The caller
    acks cumulatively with {!rx_expected} after {e every} data frame,
    duplicates included — the lost packet may have been the ack. *)

val rx_expected : 'm rx -> int
val rx_reset : 'm rx -> unit
(** The peer is a fresh incarnation: expect a channel renumbered
    from 0. *)
