type msg = Wire.msg

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Per-peer outbound state: the dialer/writer thread owns the
   connection; [mu] guards everything else. [tx_gen] bumps when the
   peer comes back as a new process (sequence numbers restarted), so
   stale acks and stale chaos-delayed frames from the previous
   numbering can be recognized and dropped. *)
type peer = {
  dst : int;
  pmu : Mutex.t;
  pcv : Condition.t;
  outq : Wire.frame Queue.t;
  ptx : msg Transport.tx;
  mutable tx_gen : int;
  mutable fd : Unix.file_descr option;
  mutable peer_boot : int option;
}

(* Per-source inbound state, shared by however many connections that
   source opens over time (a restart can briefly leave two). *)
type inbound = {
  imu : Mutex.t;
  irx : msg Transport.rx;
  mutable iboot : int option;
}

type t = {
  me : int;
  n : int;
  boot : int;
  eps : Conn.endpoint array;
  node : msg Rt.Node.t;
  peers : peer option array;
  inbound : inbound array;
  chaos : Chaos.state option;
  rto0 : float;
  rto_max : float;
  t0 : int64;
  metrics : Obs.Metrics.t;
  c_sent : Obs.Metrics.counter;
  c_delivered : Obs.Metrics.counter;
  c_broadcasts : Obs.Metrics.counter;
  c_data : Obs.Metrics.counter;
  c_retx : Obs.Metrics.counter;
  c_acks : Obs.Metrics.counter;
  c_reconnects : Obs.Metrics.counter;
  c_chaos_drop : Obs.Metrics.counter;
  c_chaos_dup : Obs.Metrics.counter;
  c_chaos_delay : Obs.Metrics.counter;
  stopping : bool Atomic.t;
  mutable listener : Unix.file_descr option;
  mutable threads : Thread.t list;
  cmu : Mutex.t;  (* guards [conns] and [client_handler] *)
  mutable conns : Unix.file_descr list;
  mutable client_handler : Wire.frame -> reply:(Wire.frame -> unit) -> unit;
  dmu : Mutex.t;  (* guards [delayed] *)
  mutable delayed : (float * peer * int * Wire.frame) list;
}

let create ?chaos ?(rto0 = 0.1) ?(rto_max = 2.0) ~me ~eps () =
  let n = Array.length eps in
  if me < 0 || me >= n then invalid_arg "Net.create: me out of range";
  (* A peer writing into our dead socket must not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let metrics = Obs.Metrics.create () in
  let chaos =
    match chaos with
    | Some c when Chaos.is_active c -> Some (Chaos.make c)
    | _ -> None
  in
  {
    me;
    n;
    (* Incarnation id: must differ across restarts of the same node id.
       Monotonic nanoseconds xor pid, kept positive. *)
    boot = now_ns () lxor (Unix.getpid () lsl 24) land max_int;
    eps = Array.copy eps;
    node = Rt.Node.create ~parking:`Mutex me;
    peers =
      Array.init n (fun dst ->
          if dst = me then None
          else
            Some
              {
                dst;
                pmu = Mutex.create ();
                pcv = Condition.create ();
                outq = Queue.create ();
                ptx = Transport.tx ~rto0 ~rto_max ();
                tx_gen = 0;
                fd = None;
                peer_boot = None;
              });
    inbound =
      Array.init n (fun _ ->
          { imu = Mutex.create (); irx = Transport.rx (); iboot = None });
    chaos;
    rto0;
    rto_max;
    t0 = Monotonic_clock.now ();
    metrics;
    c_sent = Obs.Metrics.counter metrics "net.sent";
    c_delivered = Obs.Metrics.counter metrics "net.delivered";
    c_broadcasts = Obs.Metrics.counter metrics "net.broadcasts";
    c_data = Obs.Metrics.counter metrics "dist.data_sent";
    c_retx = Obs.Metrics.counter metrics "dist.retransmits";
    c_acks = Obs.Metrics.counter metrics "dist.acks_sent";
    c_reconnects = Obs.Metrics.counter metrics "dist.reconnects";
    c_chaos_drop = Obs.Metrics.counter metrics "dist.chaos_dropped";
    c_chaos_dup = Obs.Metrics.counter metrics "dist.chaos_dupped";
    c_chaos_delay = Obs.Metrics.counter metrics "dist.chaos_delayed";
    stopping = Atomic.make false;
    listener = None;
    threads = [];
    cmu = Mutex.create ();
    conns = [];
    client_handler = (fun _ ~reply:_ -> ());
    dmu = Mutex.create ();
    delayed = [];
  }

let me t = t.me
let size t = t.n
let boot t = t.boot
let metrics t = t.metrics

let now t =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.t0) *. 1e-9

let close_quietly fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let track_conn t fd =
  Mutex.lock t.cmu;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.cmu

let untrack_conn t fd =
  Mutex.lock t.cmu;
  t.conns <- List.filter (fun fd' -> fd' != fd) t.conns;
  Mutex.unlock t.cmu

(* ------------------------------------------------------------------ *)
(* Outbound: dialer / writer / ack reader, one trio per peer.          *)

let mark_conn_dead p fd =
  Mutex.lock p.pmu;
  if p.fd = Some fd then begin
    p.fd <- None;
    Condition.broadcast p.pcv
  end;
  Mutex.unlock p.pmu

(* Drains acks coming back on the outbound connection. [gen] pins the
   numbering this connection was speaking: after the peer reboots and
   the channel renumbers, a late ack from the old connection must not
   trim the renumbered queue. *)
let ack_reader_loop t p fd reader gen =
  let rec loop () =
    match Conn.read_frame reader with
    | Ok (Wire.Ack { upto }) ->
        Mutex.lock p.pmu;
        if p.tx_gen = gen then
          ignore (Transport.tx_ack p.ptx ~now:(now t) ~upto);
        Mutex.unlock p.pmu;
        loop ()
    | Ok _ | Error _ -> ()
  in
  loop ();
  mark_conn_dead p fd

let delay_frame t release p gen frame =
  Mutex.lock t.dmu;
  t.delayed <- (release, p, gen, frame) :: t.delayed;
  Mutex.unlock t.dmu

(* Release chaos-delayed frames back into their peer's queue once their
   time comes. Polling at 5 ms is fine: delays are chaos-scale
   (milliseconds), not protocol-scale. *)
let delayer_loop t =
  while not (Atomic.get t.stopping) do
    let now_ = now t in
    Mutex.lock t.dmu;
    let due, rest =
      List.partition (fun (release, _, _, _) -> release <= now_) t.delayed
    in
    t.delayed <- rest;
    Mutex.unlock t.dmu;
    List.iter
      (fun (_, p, gen, frame) ->
        Mutex.lock p.pmu;
        if p.tx_gen = gen then begin
          Queue.push frame p.outq;
          Condition.broadcast p.pcv
        end;
        Mutex.unlock p.pmu)
      due;
    Thread.delay 0.005
  done

let write_data t p fd frame =
  let ok = Conn.write_frame fd frame in
  if ok then Obs.Metrics.incr t.c_data else mark_conn_dead p fd;
  ok

(* Pop frames and put them on the wire until the connection dies or we
   stop. Chaos applies to Data frames only — handshakes and acks always
   go through, so faults exercise retransmission rather than jamming
   connection establishment. A dropped frame simply stays unacked. *)
let writer_loop t p fd =
  let rec loop () =
    Mutex.lock p.pmu;
    while
      Queue.is_empty p.outq && p.fd = Some fd && not (Atomic.get t.stopping)
    do
      Condition.wait p.pcv p.pmu
    done;
    if Atomic.get t.stopping || p.fd <> Some fd then Mutex.unlock p.pmu
    else begin
      let frame = Queue.pop p.outq in
      let gen = p.tx_gen in
      Mutex.unlock p.pmu;
      (match (frame, t.chaos) with
      | Wire.Data _, Some st -> (
          match Chaos.judge st ~now:(now t) ~dst:p.dst with
          | Chaos.Pass -> ignore (write_data t p fd frame)
          | Chaos.Drop -> Obs.Metrics.incr t.c_chaos_drop
          | Chaos.Duplicate ->
              Obs.Metrics.incr t.c_chaos_dup;
              if write_data t p fd frame then
                ignore (write_data t p fd frame)
          | Chaos.Delay d ->
              Obs.Metrics.incr t.c_chaos_delay;
              delay_frame t (now t +. d) p gen frame)
      | _ ->
          if not (Conn.write_frame fd frame) then mark_conn_dead p fd);
      loop ()
    end
  in
  loop ()

(* One established outbound connection: handshake, resync the channel,
   then write until it dies. Returns when the connection is gone. *)
let run_connection t p fd =
  if not (Conn.write_frame fd (Wire.Hello { src = t.me; boot = t.boot }))
  then close_quietly fd
  else
    let reader = Conn.reader fd in
    match Conn.read_frame reader with
    | Ok (Wire.Welcome { boot; rx_expected }) ->
        let gen =
          Mutex.lock p.pmu;
          let rebooted =
            match p.peer_boot with
            | None -> false
            | Some b -> b <> boot
          in
          if rebooted then p.tx_gen <- p.tx_gen + 1;
          if p.peer_boot <> None then Obs.Metrics.incr t.c_reconnects;
          p.peer_boot <- Some boot;
          (* Frames queued for the dead connection are all unacked, so
             tx_reconnect re-emits them with the right numbering; the
             stale queue entries would duplicate (or, after a renumber,
             corrupt) them. *)
          Queue.clear p.outq;
          let frames =
            Transport.tx_reconnect p.ptx ~now:(now t)
              ~peer_rebooted:rebooted ~rx_expected
          in
          List.iter
            (fun (seq, m) -> Queue.push (Wire.Data { seq; msg = m }) p.outq)
            frames;
          p.fd <- Some fd;
          let gen = p.tx_gen in
          Mutex.unlock p.pmu;
          gen
        in
        let ack_thread =
          Thread.create (fun () -> ack_reader_loop t p fd reader gen) ()
        in
        writer_loop t p fd;
        close_quietly fd;
        Thread.join ack_thread
    | Ok _ | Error _ -> close_quietly fd

let dialer_loop t p =
  let stop () = Atomic.get t.stopping in
  let rec loop () =
    if not (stop ()) then begin
      (match Conn.dial ~stop t.eps.(p.dst) with
      | None -> ()
      | Some fd -> run_connection t p fd);
      if not (stop ()) then begin
        Thread.delay 0.01;
        loop ()
      end
    end
  in
  loop ()

(* Retransmission timer: poll every 20 ms, re-queue whatever is due on a
   live connection. With the connection down there is no point — the
   reconnect handshake re-emits everything anyway. *)
let retransmit_loop t =
  while not (Atomic.get t.stopping) do
    Array.iter
      (function
        | None -> ()
        | Some p ->
            Mutex.lock p.pmu;
            if p.fd <> None then begin
              match Transport.tx_due p.ptx ~now:(now t) with
              | [] -> ()
              | frames ->
                  List.iter
                    (fun (seq, m) ->
                      Obs.Metrics.incr t.c_retx;
                      Queue.push (Wire.Data { seq; msg = m }) p.outq)
                    frames;
                  Condition.broadcast p.pcv
            end;
            Mutex.unlock p.pmu)
      t.peers;
    Thread.delay 0.02
  done

(* ------------------------------------------------------------------ *)
(* Inbound: accept loop + one reader thread per connection.            *)

(* A peer connection: reset the channel if this is a new incarnation of
   [src], then deliver Data in order and ack after every frame (the
   lost packet may have been our ack). Posting to the mailbox inside
   [imu] keeps delivery FIFO even if a reconnecting src briefly has two
   live connections racing here. *)
let peer_conn_loop t fd reader ~src ~src_boot =
  let ib = t.inbound.(src) in
  Mutex.lock ib.imu;
  if ib.iboot <> Some src_boot then begin
    Transport.rx_reset ib.irx;
    ib.iboot <- Some src_boot
  end;
  let expected = Transport.rx_expected ib.irx in
  Mutex.unlock ib.imu;
  if Conn.write_frame fd (Wire.Welcome { boot = t.boot; rx_expected = expected })
  then
    let rec loop () =
      match Conn.read_frame reader with
      | Ok (Wire.Data { seq; msg }) ->
          Mutex.lock ib.imu;
          let stale = ib.iboot <> Some src_boot in
          let upto =
            if stale then 0
            else begin
              List.iter
                (fun m ->
                  Obs.Metrics.incr t.c_delivered;
                  ignore
                    (Rt.Node.post t.node (Rt.Node.Net { src; msg = m; meta = None })))
                (Transport.rx_data ib.irx ~seq msg);
              Transport.rx_expected ib.irx
            end
          in
          Mutex.unlock ib.imu;
          (* A newer incarnation of src took over the channel: this
             connection is an orphan — stop speaking for it. *)
          if (not stale) && Conn.write_frame fd (Wire.Ack { upto }) then begin
            Obs.Metrics.incr t.c_acks;
            loop ()
          end
      | Ok _ | Error _ -> ()
    in
    loop ()

(* A client connection: Req frames in, Resp frames out. The handler
   typically defers to protocol context and calls [reply] later, from
   the node's run loop — hence the write lock. *)
let client_conn_loop t fd reader first =
  let wmu = Mutex.create () in
  let reply frame =
    Mutex.lock wmu;
    ignore (Conn.write_frame fd frame);
    Mutex.unlock wmu
  in
  let handler =
    Mutex.lock t.cmu;
    let h = t.client_handler in
    Mutex.unlock t.cmu;
    h
  in
  let rec loop frame =
    handler frame ~reply;
    match Conn.read_frame reader with
    | Ok (Wire.Req _ as next) -> loop next
    | Ok _ | Error _ -> ()
  in
  loop first

let conn_thread t fd =
  track_conn t fd;
  let reader = Conn.reader fd in
  (match Conn.read_frame reader with
  | Ok (Wire.Hello { src; boot })
    when src >= 0 && src < t.n && src <> t.me ->
      peer_conn_loop t fd reader ~src ~src_boot:boot
  | Ok (Wire.Req _ as first) -> client_conn_loop t fd reader first
  | Ok _ | Error _ -> ());
  close_quietly fd;
  untrack_conn t fd

let accept_loop t listener =
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept listener with
      | fd, _ ->
          ignore (Thread.create (fun () -> conn_thread t fd) ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ ->
          (* Listener closed (shutdown) or transient accept failure. *)
          if not (Atomic.get t.stopping) then begin
            Thread.delay 0.01;
            loop ()
          end
  in
  loop ()

(* ------------------------------------------------------------------ *)

let start t =
  let listener = Conn.listen t.eps.(t.me) in
  t.listener <- Some listener;
  let spawn f = t.threads <- Thread.create f () :: t.threads in
  spawn (fun () -> accept_loop t listener);
  spawn (fun () -> retransmit_loop t);
  if t.chaos <> None then spawn (fun () -> delayer_loop t);
  Array.iter
    (function
      | None -> ()
      | Some p -> spawn (fun () -> dialer_loop t p))
    t.peers

let run t = Rt.Node.run t.node
let post_work t f = ignore (Rt.Node.post t.node (Rt.Node.Work f))
let request_stop t = ignore (Rt.Node.post t.node Rt.Node.Stop)

let set_client_handler t h =
  Mutex.lock t.cmu;
  t.client_handler <- h;
  Mutex.unlock t.cmu

let stop t =
  Atomic.set t.stopping true;
  request_stop t;
  (match t.listener with
  | Some fd ->
      close_quietly fd;
      t.listener <- None
  | None -> ());
  (match t.eps.(t.me) with
  | Conn.Unix_ep path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Conn.Tcp_ep _ -> ());
  Array.iter
    (function
      | None -> ()
      | Some p ->
          Mutex.lock p.pmu;
          (match p.fd with Some fd -> close_quietly fd | None -> ());
          p.fd <- None;
          Condition.broadcast p.pcv;
          Mutex.unlock p.pmu)
    t.peers;
  Mutex.lock t.cmu;
  let conns = t.conns in
  Mutex.unlock t.cmu;
  List.iter close_quietly conns;
  List.iter Thread.join t.threads;
  t.threads <- []

(* ------------------------------------------------------------------ *)
(* The engine surface.                                                 *)

let send t ~src ~dst m =
  if src = t.me && dst >= 0 && dst < t.n then begin
    Obs.Metrics.incr t.c_sent;
    if dst = t.me then begin
      if Rt.Node.post t.node (Rt.Node.Net { src; msg = m; meta = None }) then
        Obs.Metrics.incr t.c_delivered
    end
    else
      match t.peers.(dst) with
      | None -> ()
      | Some p ->
          Mutex.lock p.pmu;
          let seq = Transport.tx_send p.ptx ~now:(now t) m in
          Queue.push (Wire.Data { seq; msg = m }) p.outq;
          Condition.broadcast p.pcv;
          Mutex.unlock p.pmu
  end

let backend t =
  {
    Backend.n = t.n;
    backend_name = "dist";
    now = (fun () -> now t);
    send = (fun ~src ~dst m -> send t ~src ~dst m);
    broadcast =
      (fun ~src m ->
        if src = t.me then begin
          Obs.Metrics.incr t.c_broadcasts;
          for dst = 0 to t.n - 1 do
            send t ~src ~dst m
          done
        end);
    set_handler =
      (fun i h -> if i = t.me then Rt.Node.set_handler t.node h);
    set_msg_label = (fun _ -> ());
    new_condition =
      (fun ~node ->
        if node = t.me then
          {
            Backend.await = (fun pred -> Rt.Node.await t.node pred);
            signal = (fun () -> ());
          }
        else
          {
            Backend.await =
              (fun _ ->
                invalid_arg
                  "Dist.Net: only the local node's condition can be awaited");
            signal = (fun () -> ());
          });
    trace = Obs.Trace.noop;
    metrics = t.metrics;
  }
