(** The off-box experiment driver: client load against a running dist
    deployment, merging the per-operation timestamps every node reports
    into one {!Proto.History.t}, and (in process mode) the whole
    spawn / kill -9 / WAL-recovery / reap choreography.

    The history merge is sound because every node stamps operations
    with the same system-wide [CLOCK_MONOTONIC]: real-time precedence
    between operations on different processes is exactly comparison of
    those stamps. Failed round-trips become {e aborts} — the client
    cannot know whether the op took effect, so the checker treats it as
    forever-pending, which only weakens the constraints it imposes. *)

type op_kind = K_update of int | K_scan of int option array

type op_rec = {
  o_node : int;
      (** the serving node — the history's sequential process (the node
          serializes every client's ops through its run loop, and its
          id is the writer id scans key segments on, so per-node
          intervals from node-side stamps never overlap) *)
  o_kind : op_kind;
  o_inv : int;
      (** invocation stamp, CLOCK_MONOTONIC ns. Completed ops carry
          node-side stamps (taken inside the serialized protocol loop);
          aborted ops carry client-side stamps, which {!merge_history}
          re-anchors into the node's sequence *)
  o_resp : int;  (** response stamp *)
  o_ok : bool;  (** false = aborted (conn died mid-op) *)
}

val drive_clients :
  eps:Conn.endpoint array ->
  clients:int ->
  secs:float ->
  ?scan_fraction:float ->
  ?seed:int ->
  unit ->
  op_rec list
(** Closed-loop load: [clients] threads, each pinned to node
    [c mod n] and failing over round-robin when its connection dies.
    Update values are unique per client ([(c+1) * 1_000_000 + k]) so
    the checker's value-based matching works. [scan_fraction] defaults
    to 0.3. Aborted ops carry client-side stamps — same clock, and an
    earlier invocation stamp only relaxes the checker's constraints. *)

val merge_history : op_rec list -> Proto.History.t
(** Replay the records into a history in global timestamp order,
    interleaving invocations and responses exactly as they happened
    across all processes. Aborted ops only have client-side stamps, so
    they are re-anchored just after the node's last pre-failure
    response: a killed node's reply either escaped its socket (then the
    op completed) or did not (then the op, if it ran at all, ran after
    every op whose reply escaped) — so the anchored interval is never
    later than the true execution slot, which is the sound direction,
    and chaining the anchored aborts keeps the node sequential. *)

(** {2 Process mode} *)

type exit_status = Clean | Exited of int | Signaled of int

type node_exit = { x_node : int; x_status : exit_status; x_restarted : bool }

type recovery = { rec_node : int; rec_ready_after : float }
(** Seconds from respawn to the first successful operation on the
    recovered node. *)

type report = {
  history : Proto.History.t;
  ops_total : int;
  ops_aborted : int;
  duration : float;
  ops_per_sec : float;
  update_lat : Obs.Hdr.dist;  (** node-side service time, seconds *)
  scan_lat : Obs.Hdr.dist;
  killed : int list;
  recoveries : recovery list;
  exits : node_exit list;
  retransmits : int;  (** summed over nodes' final metric dumps; -1 if unknown *)
}

type config = {
  algo : Rt.Service.algo;
  nodes : int;
  f : int;
  clients : int;
  secs : float;
  kill : int;  (** SIGKILL this many nodes mid-run (<= f), then restart them *)
  dir : string;  (** run directory: sockets, WALs, per-node logs *)
  tcp_base : int option;  (** Some port: TCP endpoints instead of unix sockets *)
  scan_fraction : float;
  seed : int;
  chaos : Chaos.t option;
  worker_argv : string array;
      (** argv prefix that reaches [dist-node]'s flag parser — e.g.
          [[| Sys.executable_name; "dist-node" |]]; the supervisor
          appends the per-node flags. *)
}

val run : config -> report
(** Spawn [nodes] worker processes, drive load, kill -9 [kill] of them
    at half-time, respawn them with [--recover] at three-quarter time,
    probe until the recovered node serves again, then SIGTERM everyone
    and reap. Worker stdout/stderr land in [dir/node-I.log]. *)

val pp_report : Format.formatter -> report -> unit
