(** One protocol node as a process: wire a {!Net} backend to an
    algorithm instance, serve client [Req] frames over the same
    listener, optionally persist through a WAL and run the rejoin
    protocol on startup. [bin/aso_demo dist-node] is a thin CLI shell
    around this module; {!Local} embeds it in-process for tests and
    benches. *)

type config = {
  me : int;
  eps : Conn.endpoint array;
  f : int;
  algo : Rt.Service.algo;
  wal : string option;  (** WAL path — enables persistence *)
  recover : bool;  (** replay the WAL and run the rejoin protocol first *)
  chaos : Chaos.t option;
}

type t

val start : ?telemetry:string -> config -> t
(** Build the backend, instantiate the algorithm on it, install the
    client handler, open sockets. With [?telemetry] (["HOST:PORT"]), a
    Prometheus exposition endpoint serves the node's metrics registry.
    The node is live once this returns, but operations only run once
    {!run} is looping. *)

val net : t -> Net.t

val run : t -> unit
(** The node's protocol loop (blocking; the caller's thread). Returns
    after {!request_stop}. *)

val request_stop : t -> unit
(** Graceful shutdown trigger — safe from a signal handler. In-flight
    client operations complete before {!run} returns (the [Stop] is
    just another mailbox item behind them). *)

val shutdown : t -> unit
(** Close sockets, stop helper threads and the telemetry endpoint.
    Call after {!run} returned. *)
