type config = {
  me : int;
  eps : Conn.endpoint array;
  f : int;
  algo : Rt.Service.algo;
  wal : string option;
  recover : bool;
  chaos : Chaos.t option;
}

(* Algorithm-agnostic operation surface over the local node — the same
   shape Rt.Service uses internally. *)
type ops = {
  op_update : int -> unit;
  op_scan : unit -> int option array;
  op_begin_recovery : unit -> unit;
  op_recover : unit -> unit;
}

type t = { net : Net.t; expo : Rt.Expo_server.t option }

let build_ops cfg backend =
  let me = cfg.me in
  let attach_store core =
    match cfg.wal with
    | None -> ()
    | Some path ->
        Aso_core.Lattice_core.set_store
          (Aso_core.Lattice_core.node core me)
          (Persist.Store.file path)
  in
  match cfg.algo with
  | Rt.Service.Eq_aso ->
      let a = Aso_core.Eq_aso.create_on backend ~f:cfg.f in
      attach_store (Aso_core.Eq_aso.core a);
      {
        op_update = (fun v -> Aso_core.Eq_aso.update a ~node:me v);
        op_scan = (fun () -> Aso_core.Eq_aso.scan a ~node:me);
        op_begin_recovery =
          (fun () -> Aso_core.Eq_aso.begin_recovery a ~node:me);
        op_recover = (fun () -> Aso_core.Eq_aso.recover a ~node:me);
      }
  | Rt.Service.Sso_fast_scan ->
      let a = Aso_core.Sso.create_on backend ~f:cfg.f in
      attach_store (Aso_core.Sso.core a);
      {
        op_update = (fun v -> Aso_core.Sso.update a ~node:me v);
        op_scan = (fun () -> Aso_core.Sso.scan a ~node:me);
        op_begin_recovery = (fun () -> Aso_core.Sso.begin_recovery a ~node:me);
        op_recover = (fun () -> Aso_core.Sso.recover a ~node:me);
      }

let start ?telemetry cfg =
  if cfg.recover && cfg.wal = None then
    invalid_arg "Node_main.start: --recover needs a WAL";
  let net = Net.create ?chaos:cfg.chaos ~me:cfg.me ~eps:cfg.eps () in
  (* create_on builds every node's state but only ours is driven; it
     installs our handler on the backend, which must precede Net.start
     (no traffic before the handler exists). *)
  let ops = build_ops cfg (Net.backend net) in
  Net.set_client_handler net (fun frame ~reply ->
      match frame with
      | Wire.Req { rid; op } ->
          (* Operation invocation/response stamps are taken inside
             protocol context, around the blocking op itself. The run
             loop serializes every operation on this node, so its
             [t_inv, t_resp] intervals never overlap — each node is a
             sequential process, exactly the paper's model. *)
          Net.post_work net (fun () ->
              try
                let t_inv = Net.now_ns () in
                let result =
                  match op with
                  | Wire.Op_update v ->
                      ops.op_update v;
                      Wire.R_update_done
                  | Wire.Op_scan -> Wire.R_scan (ops.op_scan ())
                in
                let t_resp = Net.now_ns () in
                reply (Wire.Resp { rid; t_inv; t_resp; result })
              with e ->
                (* Don't let a failed op kill the node loop; the client
                   times out and retries elsewhere. *)
                Printf.eprintf "dist-node %d: op failed: %s\n%!" cfg.me
                  (Printexc.to_string e))
      | _ -> ());
  (* Rejoin runs as the first operation: reset volatile state (epoch
     bump fences stale-incarnation acks), then replay the WAL + quorum
     pull + mint fence + renewal. Client ops posted meanwhile are
     deferred behind it by the run loop. *)
  if cfg.recover then
    Net.post_work net (fun () ->
        ops.op_begin_recovery ();
        ops.op_recover ());
  Net.start net;
  let expo =
    match telemetry with
    | None -> None
    | Some addr ->
        Some
          (Rt.Expo_server.start ~addr (fun () ->
               Obs.Expo.to_prometheus
                 (Obs.Metrics.snapshot (Net.metrics net))))
  in
  { net; expo }

let net t = t.net
let run t = Net.run t.net
let request_stop t = Net.request_stop t.net

let shutdown t =
  Net.stop t.net;
  match t.expo with None -> () | Some e -> Rt.Expo_server.stop e
