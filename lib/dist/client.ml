type t = {
  fd : Unix.file_descr;
  reader : Conn.reader;
  mutable next_rid : int;
  mutable dead : bool;
}

let connect ?(attempts = 50) ?(rcv_timeout = 30.) ep =
  let rec go k =
    if k = 0 then None
    else
      match Conn.connect ep with
      | Ok fd ->
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO rcv_timeout
           with Unix.Unix_error _ -> ());
          Some { fd; reader = Conn.reader fd; next_rid = 0; dead = false }
      | Error _ ->
          Thread.delay 0.02;
          go (k - 1)
  in
  go attempts

let close t =
  t.dead <- true;
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Send one Req and wait for the matching Resp. Any read/write failure
   (including the receive timeout) poisons the connection: we cannot
   know whether the op took effect, which is exactly an abort. *)
let roundtrip t op =
  if t.dead then Error ()
  else begin
    let rid = t.next_rid in
    t.next_rid <- rid + 1;
    if not (Conn.write_frame t.fd (Wire.Req { rid; op })) then begin
      t.dead <- true;
      Error ()
    end
    else
      let rec wait () =
        match Conn.read_frame t.reader with
        | Ok (Wire.Resp { rid = rid'; t_inv; t_resp; result })
          when rid' = rid ->
            Ok (t_inv, t_resp, result)
        | Ok (Wire.Resp _) -> wait ()  (* a stale response; skip *)
        | Ok _ | Error _ ->
            t.dead <- true;
            Error ()
      in
      wait ()
  end

let update t v =
  match roundtrip t (Wire.Op_update v) with
  | Ok (t_inv, t_resp, Wire.R_update_done) -> Ok (t_inv, t_resp)
  | Ok _ ->
      t.dead <- true;
      Error ()
  | Error () -> Error ()

let scan t =
  match roundtrip t Wire.Op_scan with
  | Ok (t_inv, t_resp, Wire.R_scan snap) -> Ok (snap, t_inv, t_resp)
  | Ok _ ->
      t.dead <- true;
      Error ()
  | Error () -> Error ()
