(* Sender side of one ordered channel. [unacked] holds (seq, payload)
   in increasing seq order, exactly like Sim.Transport's tx; the timer
   is a deadline the caller polls instead of an engine event. *)
type 'm tx = {
  mutable next_seq : int;
  mutable unacked : (int * 'm) Queue.t;
  rto0 : float;
  rto_max : float;
  mutable rto : float;
  mutable deadline : float;  (* next retransmission time; infinity = idle *)
}

let tx ?(rto0 = 0.1) ?(rto_max = 2.0) () =
  assert (rto0 > 0. && rto_max >= rto0);
  {
    next_seq = 0;
    unacked = Queue.create ();
    rto0;
    rto_max;
    rto = rto0;
    deadline = infinity;
  }

let tx_send t ~now m =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Queue.push (seq, m) t.unacked;
  if t.deadline = infinity then t.deadline <- now +. t.rto;
  seq

let tx_ack t ~now ~upto =
  let progressed = ref false in
  while
    (not (Queue.is_empty t.unacked)) && fst (Queue.peek t.unacked) < upto
  do
    ignore (Queue.pop t.unacked);
    progressed := true
  done;
  if !progressed then begin
    t.rto <- t.rto0;
    t.deadline <-
      (if Queue.is_empty t.unacked then infinity else now +. t.rto)
  end;
  !progressed

let tx_due t ~now =
  if Queue.is_empty t.unacked || now < t.deadline then []
  else begin
    t.rto <- Float.min (t.rto *. 2.) t.rto_max;
    t.deadline <- now +. t.rto;
    List.of_seq (Queue.to_seq t.unacked)
  end

let tx_reconnect t ~now ~peer_rebooted ~rx_expected =
  (* Trim what the peer already delivered — its ack may have died with
     the old connection. *)
  while
    (not (Queue.is_empty t.unacked)) && fst (Queue.peek t.unacked) < rx_expected
  do
    ignore (Queue.pop t.unacked)
  done;
  if peer_rebooted then begin
    (* Fresh incarnation: its rx state is gone, so the channel restarts
       at 0. Renumber the survivors contiguously — their original
       numbers would sit in the new rx's out-of-order buffer forever,
       waiting for predecessors that no longer exist. *)
    let fresh = Queue.create () in
    let n = ref 0 in
    Queue.iter
      (fun (_, m) ->
        Queue.push (!n, m) fresh;
        incr n)
      t.unacked;
    t.unacked <- fresh;
    t.next_seq <- !n
  end;
  t.rto <- t.rto0;
  t.deadline <-
    (if Queue.is_empty t.unacked then infinity else now +. t.rto);
  List.of_seq (Queue.to_seq t.unacked)

let tx_unacked t = Queue.length t.unacked
let tx_next_seq t = t.next_seq

(* Receiver side: [expected] is the next in-order sequence number;
   later frames wait in [ooo]. Same structure as Sim.Transport's rx. *)
type 'm rx = { mutable expected : int; ooo : (int, 'm) Hashtbl.t }

let rx () = { expected = 0; ooo = Hashtbl.create 8 }

let rx_data t ~seq m =
  if seq >= t.expected && not (Hashtbl.mem t.ooo seq) then begin
    Hashtbl.replace t.ooo seq m;
    let delivered = ref [] in
    while Hashtbl.mem t.ooo t.expected do
      delivered := Hashtbl.find t.ooo t.expected :: !delivered;
      Hashtbl.remove t.ooo t.expected;
      t.expected <- t.expected + 1
    done;
    List.rev !delivered
  end
  else []

let rx_expected t = t.expected

let rx_reset t =
  t.expected <- 0;
  Hashtbl.reset t.ooo
