type endpoint = Unix_ep of string | Tcp_ep of string * int

let endpoint_to_string = function
  | Unix_ep path -> "unix:" ^ path
  | Tcp_ep (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let endpoint_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "unix endpoint needs a path" else Ok (Unix_ep path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error "tcp endpoint is tcp:HOST:PORT"
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok (Tcp_ep ((if host = "" then "127.0.0.1" else host), p))
          | _ -> Error "tcp endpoint has a bad port"))
  | _ -> Error (Printf.sprintf "bad endpoint %S (unix:PATH or tcp:HOST:PORT)" s)

let pp_endpoint ppf ep = Format.pp_print_string ppf (endpoint_to_string ep)

let sockaddr = function
  | Unix_ep path -> Unix.ADDR_UNIX path
  | Tcp_ep (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let domain = function Unix_ep _ -> Unix.PF_UNIX | Tcp_ep _ -> Unix.PF_INET

let listen ep =
  (match ep with
  | Unix_ep path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp_ep _ -> ());
  let sock = Unix.socket (domain ep) Unix.SOCK_STREAM 0 in
  (try
     (match ep with
     | Tcp_ep _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
     | Unix_ep _ -> ());
     Unix.bind sock (sockaddr ep);
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  sock

let connect ep =
  let sock = Unix.socket (domain ep) Unix.SOCK_STREAM 0 in
  match Unix.connect sock (sockaddr ep) with
  | () -> Ok sock
  | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error e

let dial ?(backoff0 = 0.01) ?(backoff_max = 0.5) ~stop ep =
  let rec go pause =
    if stop () then None
    else
      match connect ep with
      | Ok fd -> Some fd
      | Error _ ->
          Thread.delay pause;
          go (Float.min (pause *. 2.) backoff_max)
  in
  go backoff0

let write_frame fd frame =
  let s = Wire.encode frame in
  let len = String.length s in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring fd s off (len - off) with
      | 0 -> false
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* Buffered reader: accumulate into [buf], decode from [lo]; compact
   when the valid region ends (cheap — frames are small). *)
type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable lo : int;  (* first undecoded byte *)
  mutable hi : int;  (* end of valid data *)
}

let reader fd = { fd; buf = Bytes.create 8192; lo = 0; hi = 0 }

let refill r =
  if r.lo > 0 then begin
    Bytes.blit r.buf r.lo r.buf 0 (r.hi - r.lo);
    r.hi <- r.hi - r.lo;
    r.lo <- 0
  end;
  if r.hi = Bytes.length r.buf then
    r.buf <- Bytes.extend r.buf 0 (Bytes.length r.buf);
  match Unix.read r.fd r.buf r.hi (Bytes.length r.buf - r.hi) with
  | 0 -> false
  | n ->
      r.hi <- r.hi + n;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Unix.Unix_error _ -> false

let rec read_frame r =
  (* Decoding from a string copy of the window keeps Wire pure; frames
     are small and this path is not the ops hot loop (one copy per
     refill round, not per frame, would be an easy upgrade). *)
  let window = Bytes.sub_string r.buf r.lo (r.hi - r.lo) in
  match Wire.decode window ~pos:0 with
  | Ok (frame, consumed) ->
      r.lo <- r.lo + consumed;
      Ok frame
  | Error Wire.Truncated ->
      if refill r then read_frame r else Error `Eof
  | Error e -> Error (`Err e)
